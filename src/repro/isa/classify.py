"""Table 1: classification of the dynamic instruction stream by format.

The paper groups the Alpha fixed-point instructions by which operand
formats they accept and produce, then reports the fraction of the dynamic
stream in each class (on average 33% of register-writing instructions
produce redundant binary results; ~25% of instructions need at least one
two's-complement input).  :func:`instruction_mix` regenerates that table
for our workloads.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.utils.stats import Distribution


class FormatClass(enum.Enum):
    """The rows of Table 1."""

    ARITH_RB_RB = "ADD/SUB/MUL/LDA/LDAH/CMOVLBx/SxADD/SxSUB/SLL (RB -> RB)"
    CMOV_SIGN_RB_RB = "CMOVLT/GE/LE/GT (RB -> RB, sign test)"
    CMOV_ZERO_RB_RB = "CMOVEQ/NE (RB -> RB, zero test)"
    MEMORY_RB_TC = "memory access (RB address -> TC)"
    CMPEQ_RB_TC = "CMPEQ (RB -> TC)"
    CMP_REL_RB_TC = "CMPLT/CMPLE/CMPULT/CMPULE (RB -> TC)"
    BRANCH_RB = "conditional branches (RB -> none)"
    OTHER_TC_TC = "other (TC -> TC)"


#: Human-readable Table 1 rows in the paper's order, with the paper's
#: reported dynamic fractions (SPEC average) for side-by-side comparison.
TABLE1_ROWS: list[tuple[FormatClass, float]] = [
    (FormatClass.ARITH_RB_RB, 0.180),
    (FormatClass.CMOV_SIGN_RB_RB, 0.004),
    (FormatClass.CMOV_ZERO_RB_RB, 0.005),
    (FormatClass.MEMORY_RB_TC, 0.366),
    (FormatClass.CMPEQ_RB_TC, 0.005),
    (FormatClass.CMP_REL_RB_TC, 0.039),
    (FormatClass.BRANCH_RB, 0.144),
    (FormatClass.OTHER_TC_TC, 0.257),
]

_ARITH_OPS = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.LDA, Opcode.LDAH,
    Opcode.CMOVLBS, Opcode.CMOVLBC,
    Opcode.S4ADD, Opcode.S8ADD, Opcode.S4SUB, Opcode.S8SUB, Opcode.SLL,
})
_CMOV_SIGN_OPS = frozenset({
    Opcode.CMOVLT, Opcode.CMOVGE, Opcode.CMOVLE, Opcode.CMOVGT,
})
_CMOV_ZERO_OPS = frozenset({Opcode.CMOVEQ, Opcode.CMOVNE})
_MEMORY_OPS = frozenset({Opcode.LDQ, Opcode.LDL, Opcode.STQ, Opcode.STL})
_CMP_REL_OPS = frozenset({
    Opcode.CMPLT, Opcode.CMPLE, Opcode.CMPULT, Opcode.CMPULE,
})
_BRANCH_OPS = frozenset({
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLE, Opcode.BGT,
    Opcode.BLBC, Opcode.BLBS,
})


def classify(instr: Instruction) -> FormatClass:
    """Map one instruction to its Table 1 row.

    The same-register MOVE idiom (``bis ra, ra, rc``) is format-transparent
    (§3.6) and counts with the RB -> RB arithmetic row, matching the
    paper's note that it is the standard Alpha MOVE.
    """
    op = instr.opcode
    if op in _ARITH_OPS:
        return FormatClass.ARITH_RB_RB
    if op in _CMOV_SIGN_OPS:
        return FormatClass.CMOV_SIGN_RB_RB
    if op in _CMOV_ZERO_OPS:
        return FormatClass.CMOV_ZERO_RB_RB
    if op in _MEMORY_OPS:
        return FormatClass.MEMORY_RB_TC
    if op is Opcode.CMPEQ:
        return FormatClass.CMPEQ_RB_TC
    if op in _CMP_REL_OPS:
        return FormatClass.CMP_REL_RB_TC
    if op in _BRANCH_OPS:
        return FormatClass.BRANCH_RB
    if op is Opcode.BIS and _is_move(instr):
        return FormatClass.ARITH_RB_RB
    return FormatClass.OTHER_TC_TC


def _is_move(instr: Instruction) -> bool:
    regs = [op.reg for op in instr.sources if op.is_reg]
    return len(regs) == len(instr.sources) == 2 and regs[0] == regs[1]


def instruction_mix(stream: Iterable[Instruction]) -> Distribution:
    """The Table 1 dynamic-mix distribution over an instruction stream.

    Control transfers without a format class (BR/JSR/RET/JMP), NOP and
    HALT are excluded, mirroring the paper's table which covers fixed-point
    instructions with operands.
    """
    excluded = {Opcode.BR, Opcode.JSR, Opcode.RET, Opcode.JMP,
                Opcode.NOP, Opcode.HALT}
    mix = Distribution()
    for instr in stream:
        if instr.opcode in excluded:
            continue
        mix.record(classify(instr))
    return mix
