"""Architectural semantics: the functional interpreter.

:class:`ArchState` executes one decoded instruction at a time against the
register file and memory, returning an :class:`ExecResult` describing the
outcome (next PC, destination value, memory effects).  The out-of-order
timing simulator drives the same interpreter instruction-by-instruction
down the correct path; :func:`run_program` runs a program standalone.

Values are stored as unsigned 64-bit integers; comparisons and branches
interpret them as signed where the opcode says so.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import (
    NUM_REGS,
    RETURN_ADDRESS_REG,
    STACK_POINTER_REG,
    ZERO_REG,
    Instruction,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import INSTRUCTION_BYTES, STACK_TOP, Program
from repro.mem.memory import PagedMemory
from repro.utils.bitops import (
    MASK64,
    count_leading_zeros,
    count_trailing_zeros,
    popcount,
    sign_extend,
    to_signed,
    wrap64,
)


@dataclass(slots=True)
class ExecResult:
    """Outcome of executing one instruction.

    Treated as immutable by convention (results are cached on fetched
    instructions and shared across pipeline stages); kept unfrozen with
    slots because the interpreter builds one per executed instruction and
    the frozen ``object.__setattr__`` constructor dominated its profile.
    """

    next_pc: int
    dest_value: int | None = None       # unsigned 64-bit, None if no dest
    mem_address: int | None = None      # effective address for loads/stores
    store_value: int | None = None
    store_size: int = 8
    taken: bool | None = None           # for branches (conditional or not)
    halted: bool = False


class SemanticsError(RuntimeError):
    """The interpreter hit something it cannot execute."""


class ArchState:
    """Architectural registers + memory + PC."""

    def __init__(self, program: Program, memory: PagedMemory | None = None) -> None:
        self.program = program
        self.memory = memory if memory is not None else PagedMemory()
        self.regs = [0] * NUM_REGS
        self.regs[STACK_POINTER_REG] = STACK_TOP
        self.pc = program.entry
        self.halted = False
        self.instructions_executed = 0
        if program.data:
            self.memory.load_image(program.data_base, program.data)

    # -- operand helpers ------------------------------------------------------

    def read_reg(self, reg: int) -> int:
        return 0 if reg == ZERO_REG else self.regs[reg]

    def write_reg(self, reg: int, value: int) -> None:
        if reg != ZERO_REG:
            self.regs[reg] = value & MASK64

    def _value(self, instr: Instruction, index: int) -> int:
        op = instr.sources[index]
        if op.reg is not None:
            return self.read_reg(op.reg)
        return wrap64(op.imm)

    # -- the interpreter -------------------------------------------------------

    def execute(self, instr: Instruction) -> ExecResult:
        """Execute ``instr`` (which must be the instruction at the PC).

        Each static instruction is compiled once, on first execution, into
        a closure specialized to its opcode and operands (see
        :func:`_compile`); :meth:`execute_reference` is the uncompiled
        path the closures must reproduce exactly.
        """
        fn = instr.__dict__.get("_exec")
        if fn is None:
            fn = _compile(instr)
            object.__setattr__(instr, "_exec", fn)
        return fn(self)

    def execute_reference(self, instr: Instruction) -> ExecResult:
        """Reference interpretation: ``_dispatch`` + architectural side
        effects.  Kept as the semantic ground truth the compiled closures
        are pinned against (and the fallback for anything they skip)."""
        result = self._dispatch(instr)
        if result.dest_value is not None and instr.dest is not None:
            self.write_reg(instr.dest, result.dest_value)
        if result.store_value is not None and result.mem_address is not None:
            self.memory.write(result.mem_address, result.store_value, result.store_size)
        self.pc = result.next_pc
        if result.halted:
            self.halted = True
        self.instructions_executed += 1
        return result

    def _dispatch(self, instr: Instruction) -> ExecResult:
        op = instr.opcode
        fall_through = instr.address + INSTRUCTION_BYTES
        v = self._value

        # -- three-operand arithmetic / logicals -------------------------------
        if op is Opcode.ADD:
            return ExecResult(fall_through, wrap64(v(instr, 0) + v(instr, 1)))
        if op is Opcode.SUB:
            return ExecResult(fall_through, wrap64(v(instr, 0) - v(instr, 1)))
        if op is Opcode.MUL:
            return ExecResult(fall_through, wrap64(v(instr, 0) * v(instr, 1)))
        if op is Opcode.S4ADD:
            return ExecResult(fall_through, wrap64((v(instr, 0) << 2) + v(instr, 1)))
        if op is Opcode.S8ADD:
            return ExecResult(fall_through, wrap64((v(instr, 0) << 3) + v(instr, 1)))
        if op is Opcode.S4SUB:
            return ExecResult(fall_through, wrap64((v(instr, 0) << 2) - v(instr, 1)))
        if op is Opcode.S8SUB:
            return ExecResult(fall_through, wrap64((v(instr, 0) << 3) - v(instr, 1)))
        if op is Opcode.AND:
            return ExecResult(fall_through, v(instr, 0) & v(instr, 1))
        if op is Opcode.BIS:
            return ExecResult(fall_through, v(instr, 0) | v(instr, 1))
        if op is Opcode.XOR:
            return ExecResult(fall_through, v(instr, 0) ^ v(instr, 1))
        if op is Opcode.BIC:
            return ExecResult(fall_through, v(instr, 0) & ~v(instr, 1) & MASK64)
        if op is Opcode.ORNOT:
            return ExecResult(fall_through, (v(instr, 0) | (~v(instr, 1) & MASK64)))
        if op is Opcode.EQV:
            return ExecResult(fall_through, (~(v(instr, 0) ^ v(instr, 1))) & MASK64)
        if op is Opcode.NOT:
            return ExecResult(fall_through, (~v(instr, 0)) & MASK64)

        # -- shifts --------------------------------------------------------------
        if op is Opcode.SLL:
            return ExecResult(fall_through, wrap64(v(instr, 0) << (v(instr, 1) & 63)))
        if op is Opcode.SRL:
            return ExecResult(fall_through, v(instr, 0) >> (v(instr, 1) & 63))
        if op is Opcode.SRA:
            return ExecResult(
                fall_through,
                wrap64(to_signed(v(instr, 0)) >> (v(instr, 1) & 63)),
            )

        # -- compares -------------------------------------------------------------
        if op is Opcode.CMPEQ:
            return ExecResult(fall_through, int(v(instr, 0) == v(instr, 1)))
        if op is Opcode.CMPLT:
            return ExecResult(
                fall_through, int(to_signed(v(instr, 0)) < to_signed(v(instr, 1)))
            )
        if op is Opcode.CMPLE:
            return ExecResult(
                fall_through, int(to_signed(v(instr, 0)) <= to_signed(v(instr, 1)))
            )
        if op is Opcode.CMPULT:
            return ExecResult(fall_through, int(v(instr, 0) < v(instr, 1)))
        if op is Opcode.CMPULE:
            return ExecResult(fall_through, int(v(instr, 0) <= v(instr, 1)))

        # -- conditional moves: sources are (test, new_value, old_dest) -------------
        if op in _CMOV_CONDITIONS:
            test = v(instr, 0)
            keep = _CMOV_CONDITIONS[op](test)
            return ExecResult(
                fall_through, v(instr, 1) if keep else v(instr, 2)
            )

        # -- byte manipulation --------------------------------------------------------
        if op is Opcode.EXTB:
            shift = (v(instr, 1) & 7) * 8
            return ExecResult(fall_through, (v(instr, 0) >> shift) & 0xFF)
        if op is Opcode.INSB:
            shift = (v(instr, 1) & 7) * 8
            return ExecResult(fall_through, (v(instr, 0) & 0xFF) << shift)
        if op is Opcode.MSKB:
            shift = (v(instr, 1) & 7) * 8
            return ExecResult(fall_through, v(instr, 0) & ~(0xFF << shift) & MASK64)
        if op is Opcode.ZAP:
            mask = 0
            zap_bits = v(instr, 1) & 0xFF
            for byte in range(8):
                if not (zap_bits >> byte) & 1:
                    mask |= 0xFF << (byte * 8)
            return ExecResult(fall_through, v(instr, 0) & mask)

        # -- counts -----------------------------------------------------------------------
        if op is Opcode.CTLZ:
            return ExecResult(fall_through, count_leading_zeros(v(instr, 0)))
        if op is Opcode.CTTZ:
            return ExecResult(fall_through, count_trailing_zeros(v(instr, 0)))
        if op is Opcode.CTPOP:
            return ExecResult(fall_through, popcount(v(instr, 0)))

        # -- address generation -------------------------------------------------------------
        if op is Opcode.LDA:
            return ExecResult(fall_through, wrap64(v(instr, 0) + instr.imm))
        if op is Opcode.LDAH:
            return ExecResult(fall_through, wrap64(v(instr, 0) + (instr.imm << 16)))

        # -- memory ----------------------------------------------------------------------------
        if op is Opcode.LDQ:
            address = wrap64(v(instr, 0) + instr.imm)
            return ExecResult(
                fall_through, self.memory.read(address, 8), mem_address=address
            )
        if op is Opcode.LDL:
            address = wrap64(v(instr, 0) + instr.imm)
            return ExecResult(
                fall_through,
                sign_extend(self.memory.read(address, 4), 32),
                mem_address=address,
            )
        if op is Opcode.STQ:
            address = wrap64(v(instr, 1) + instr.imm)
            return ExecResult(
                fall_through,
                mem_address=address,
                store_value=v(instr, 0),
                store_size=8,
            )
        if op is Opcode.STL:
            address = wrap64(v(instr, 1) + instr.imm)
            return ExecResult(
                fall_through,
                mem_address=address,
                store_value=v(instr, 0) & 0xFFFF_FFFF,
                store_size=4,
            )

        # -- control --------------------------------------------------------------------------------
        if op is Opcode.BR:
            return ExecResult(instr.target, taken=True)
        if op is Opcode.JSR:
            return ExecResult(instr.target, dest_value=fall_through, taken=True)
        if op is Opcode.RET:
            return ExecResult(self.read_reg(RETURN_ADDRESS_REG), taken=True)
        if op is Opcode.JMP:
            return ExecResult(v(instr, 0), taken=True)
        if op in _BRANCH_CONDITIONS:
            taken = _BRANCH_CONDITIONS[op](v(instr, 0))
            return ExecResult(instr.target if taken else fall_through, taken=taken)

        # -- fp-latency-class ops (fixed-point semantics, see DESIGN.md) --------------------------------
        if op is Opcode.FADD:
            return ExecResult(fall_through, wrap64(v(instr, 0) + v(instr, 1)))
        if op is Opcode.FMUL:
            return ExecResult(fall_through, wrap64(v(instr, 0) * v(instr, 1)))
        if op is Opcode.FDIV:
            divisor = to_signed(v(instr, 1))
            if divisor == 0:
                return ExecResult(fall_through, 0)
            quotient = int(to_signed(v(instr, 0)) / divisor)  # truncate toward zero
            return ExecResult(fall_through, wrap64(quotient))

        # -- misc ------------------------------------------------------------------------------------------
        if op is Opcode.NOP:
            return ExecResult(fall_through)
        if op is Opcode.HALT:
            return ExecResult(fall_through, halted=True)

        raise SemanticsError(f"no semantics for opcode {op}")


_BRANCH_CONDITIONS = {
    Opcode.BEQ: lambda value: value == 0,
    Opcode.BNE: lambda value: value != 0,
    Opcode.BLT: lambda value: to_signed(value) < 0,
    Opcode.BGE: lambda value: to_signed(value) >= 0,
    Opcode.BLE: lambda value: to_signed(value) <= 0,
    Opcode.BGT: lambda value: to_signed(value) > 0,
    Opcode.BLBC: lambda value: (value & 1) == 0,
    Opcode.BLBS: lambda value: (value & 1) == 1,
}

_CMOV_CONDITIONS = {
    Opcode.CMOVEQ: lambda value: value == 0,
    Opcode.CMOVNE: lambda value: value != 0,
    Opcode.CMOVLT: lambda value: to_signed(value) < 0,
    Opcode.CMOVGE: lambda value: to_signed(value) >= 0,
    Opcode.CMOVLE: lambda value: to_signed(value) <= 0,
    Opcode.CMOVGT: lambda value: to_signed(value) > 0,
    Opcode.CMOVLBS: lambda value: (value & 1) == 1,
    Opcode.CMOVLBC: lambda value: (value & 1) == 0,
}


# ---------------------------------------------------------------------------
# Per-instruction compilation
# ---------------------------------------------------------------------------
# The timing simulator executes every correct-path instruction through
# :meth:`ArchState.execute`, so the interpreter's opcode chain and operand
# walks sit on the hottest loop of the whole repo.  ``_compile`` turns one
# static :class:`Instruction` into a closure with the opcode behaviour,
# operand registers/immediates, fall-through PC, and destination write
# baked in as constants, leaving only the arithmetic, the architectural
# side effects, and one ``ExecResult`` per execution.  Closures are cached
# on the instruction (``_exec`` in its ``__dict__``, like the ``spec``
# cached_property), so each static instruction compiles exactly once per
# program no matter how many machines replay it.


def _zap(value: int, zap_bits: int) -> int:
    """ZAP semantics: clear the bytes selected by the low 8 mask bits."""
    mask = 0
    zap_bits &= 0xFF
    for byte in range(8):
        if not (zap_bits >> byte) & 1:
            mask |= 0xFF << (byte * 8)
    return value & mask


#: Binary operations: expression templates over source values {a}, {b}.
_BINARY_EXPR = {
    Opcode.ADD: "({a} + {b}) & MASK64",
    Opcode.SUB: "({a} - {b}) & MASK64",
    Opcode.MUL: "({a} * {b}) & MASK64",
    Opcode.S4ADD: "(({a} << 2) + {b}) & MASK64",
    Opcode.S8ADD: "(({a} << 3) + {b}) & MASK64",
    Opcode.S4SUB: "(({a} << 2) - {b}) & MASK64",
    Opcode.S8SUB: "(({a} << 3) - {b}) & MASK64",
    Opcode.AND: "{a} & {b}",
    Opcode.BIS: "{a} | {b}",
    Opcode.XOR: "{a} ^ {b}",
    Opcode.BIC: "{a} & ~{b} & MASK64",
    Opcode.ORNOT: "{a} | (~{b} & MASK64)",
    Opcode.EQV: "(~({a} ^ {b})) & MASK64",
    Opcode.SLL: "({a} << ({b} & 63)) & MASK64",
    Opcode.SRL: "{a} >> ({b} & 63)",
    Opcode.SRA: "(to_signed({a}) >> ({b} & 63)) & MASK64",
    Opcode.CMPEQ: "int({a} == {b})",
    Opcode.CMPLT: "int(to_signed({a}) < to_signed({b}))",
    Opcode.CMPLE: "int(to_signed({a}) <= to_signed({b}))",
    Opcode.CMPULT: "int({a} < {b})",
    Opcode.CMPULE: "int({a} <= {b})",
    Opcode.EXTB: "({a} >> (({b} & 7) * 8)) & 0xFF",
    Opcode.INSB: "({a} & 0xFF) << (({b} & 7) * 8)",
    Opcode.MSKB: "{a} & ~(0xFF << (({b} & 7) * 8)) & MASK64",
    Opcode.ZAP: "_zap({a}, {b})",
    Opcode.FADD: "({a} + {b}) & MASK64",
    Opcode.FMUL: "({a} * {b}) & MASK64",
}

#: Unary operations over source value {a}.
_UNARY_EXPR = {
    Opcode.NOT: "(~{a}) & MASK64",
    Opcode.CTLZ: "count_leading_zeros({a})",
    Opcode.CTTZ: "count_trailing_zeros({a})",
    Opcode.CTPOP: "popcount({a})",
}

#: Test-against-zero conditions over value {t}, shared by the conditional
#: branches (B<cond>) and conditional moves (CMOV<cond>).
_COND_EXPR = {
    "EQ": "{t} == 0",
    "NE": "{t} != 0",
    "LT": "to_signed({t}) < 0",
    "GE": "to_signed({t}) >= 0",
    "LE": "to_signed({t}) <= 0",
    "GT": "to_signed({t}) > 0",
    "LBS": "({t} & 1) == 1",
    "LBC": "({t} & 1) == 0",
}

_COMPILE_NS = {
    "ExecResult": ExecResult,
    "MASK64": MASK64,
    "to_signed": to_signed,
    "sign_extend": sign_extend,
    "count_leading_zeros": count_leading_zeros,
    "count_trailing_zeros": count_trailing_zeros,
    "popcount": popcount,
    "_zap": _zap,
}


def _codegen_body(instr: Instruction, ft: int) -> list[str] | None:
    """Function-body lines for ``instr``, or None to use the reference."""
    op = instr.opcode
    srcs = instr.sources

    def src(index: int) -> str:
        operand = srcs[index]
        if operand.reg is not None:
            return "0" if operand.reg == ZERO_REG else f"R[{operand.reg}]"
        return repr(wrap64(operand.imm))

    def finish(value_expr: str) -> list[str]:
        """Compute a destination value, store it, advance, return."""
        lines = [f"value = {value_expr}"]
        if instr.dest is not None and instr.dest != ZERO_REG:
            lines.append(f"R[{instr.dest}] = value & MASK64")
        lines += [
            f"S.pc = {ft}",
            "S.instructions_executed += 1",
            f"return ExecResult({ft}, value)",
        ]
        return lines

    if op in _BINARY_EXPR:
        if len(srcs) != 2:
            return None
        return finish(_BINARY_EXPR[op].format(a=src(0), b=src(1)))
    if op in _UNARY_EXPR:
        if len(srcs) != 1:
            return None
        return finish(_UNARY_EXPR[op].format(a=src(0)))

    name = op.name
    if name.startswith("CMOV"):
        condition = _COND_EXPR.get(name[4:])
        if condition is None or len(srcs) != 3:
            return None
        return finish(
            f"{src(1)} if {condition.format(t=src(0))} else {src(2)}"
        )

    if op is Opcode.LDA:
        if len(srcs) != 1 or instr.imm is None:
            return None
        return finish(f"({src(0)} + {instr.imm}) & MASK64")
    if op is Opcode.LDAH:
        if len(srcs) != 1 or instr.imm is None:
            return None
        return finish(f"({src(0)} + {instr.imm << 16}) & MASK64")

    if op is Opcode.LDQ or op is Opcode.LDL:
        if len(srcs) != 1 or instr.imm is None:
            return None
        read = (
            "S.memory.read(A, 8)"
            if op is Opcode.LDQ
            else "sign_extend(S.memory.read(A, 4), 32)"
        )
        lines = [
            f"A = ({src(0)} + {instr.imm}) & MASK64",
            f"value = {read}",
        ]
        if instr.dest is not None and instr.dest != ZERO_REG:
            lines.append(f"R[{instr.dest}] = value & MASK64")
        lines += [
            f"S.pc = {ft}",
            "S.instructions_executed += 1",
            f"return ExecResult({ft}, value, mem_address=A)",
        ]
        return lines

    if op is Opcode.STQ or op is Opcode.STL:
        if len(srcs) != 2 or instr.imm is None:
            return None
        size = 8 if op is Opcode.STQ else 4
        value_expr = src(0) if op is Opcode.STQ else f"{src(0)} & 0xFFFF_FFFF"
        return [
            f"A = ({src(1)} + {instr.imm}) & MASK64",
            f"v = {value_expr}",
            f"S.memory.write(A, v, {size})",
            f"S.pc = {ft}",
            "S.instructions_executed += 1",
            f"return ExecResult({ft}, mem_address=A, store_value=v, "
            f"store_size={size})",
        ]

    if op is Opcode.BR:
        if instr.target is None:
            return None
        return [
            f"S.pc = {instr.target}",
            "S.instructions_executed += 1",
            f"return ExecResult({instr.target}, taken=True)",
        ]
    if op is Opcode.JSR:
        if instr.target is None:
            return None
        lines = []
        if instr.dest is not None and instr.dest != ZERO_REG:
            lines.append(f"R[{instr.dest}] = {ft}")
        lines += [
            f"S.pc = {instr.target}",
            "S.instructions_executed += 1",
            f"return ExecResult({instr.target}, dest_value={ft}, taken=True)",
        ]
        return lines
    if op is Opcode.RET:
        return [
            f"npc = R[{RETURN_ADDRESS_REG}]",
            "S.pc = npc",
            "S.instructions_executed += 1",
            "return ExecResult(npc, taken=True)",
        ]
    if op is Opcode.JMP:
        if len(srcs) != 1:
            return None
        return [
            f"npc = {src(0)}",
            "S.pc = npc",
            "S.instructions_executed += 1",
            "return ExecResult(npc, taken=True)",
        ]
    if op in _BRANCH_CONDITIONS:
        if len(srcs) != 1 or instr.target is None:
            return None
        condition = _COND_EXPR[name[1:]]
        return [
            f"t = {condition.format(t=src(0))}",
            f"npc = {instr.target} if t else {ft}",
            "S.pc = npc",
            "S.instructions_executed += 1",
            "return ExecResult(npc, taken=t)",
        ]

    if op is Opcode.FDIV:
        if len(srcs) != 2:
            return None
        lines = [
            f"d = to_signed({src(1)})",
            "if d == 0:",
            "    value = 0",
            "else:",
            f"    value = int(to_signed({src(0)}) / d) & MASK64",
        ]
        if instr.dest is not None and instr.dest != ZERO_REG:
            lines.append(f"R[{instr.dest}] = value & MASK64")
        lines += [
            f"S.pc = {ft}",
            "S.instructions_executed += 1",
            f"return ExecResult({ft}, value)",
        ]
        return lines

    if op is Opcode.NOP:
        return [
            f"S.pc = {ft}",
            "S.instructions_executed += 1",
            f"return ExecResult({ft})",
        ]
    if op is Opcode.HALT:
        return [
            "S.halted = True",
            f"S.pc = {ft}",
            "S.instructions_executed += 1",
            f"return ExecResult({ft}, halted=True)",
        ]
    return None


def _compile(instr: Instruction):
    """Compile ``instr`` into ``fn(state) -> ExecResult``."""
    ft = instr.address + INSTRUCTION_BYTES
    body = _codegen_body(instr, ft)
    if body is None:
        return lambda state, _instr=instr: state.execute_reference(_instr)
    source = "def _f(S):\n    R = S.regs\n" + "\n".join(
        "    " + line for line in body
    )
    scope: dict = {}
    exec(
        compile(
            source,
            f"<semantics {instr.opcode.value} @{instr.address:#x}>",
            "exec",
        ),
        _COMPILE_NS,
        scope,
    )
    return scope["_f"]


def compile_fast(instr: Instruction):
    """Compile and cache the SoA fetch path's allocation-free executor.

    The fast variant applies the same architectural side effects as the
    ``_exec`` closure but skips the ``ExecResult`` construction — the SoA
    engine discards everything except the oracle facts it stores in its
    columns.  It returns ``None`` for plain operations, the effective
    address (an int) for loads and stores, and ``(next_pc, taken)`` for
    control transfers.  Cached on the instruction as ``_exec_fast``.
    """
    ft = instr.address + INSTRUCTION_BYTES
    body = _codegen_body(instr, ft)
    if body is None:
        def fn(state, _instr=instr):
            result = state.execute_reference(_instr)
            if _instr.spec.is_branch:
                return (result.next_pc, bool(result.taken))
            return result.mem_address
    else:
        op = instr.opcode
        if op is Opcode.LDQ or op is Opcode.LDL or op is Opcode.STQ or op is Opcode.STL:
            tail = "return A"
        elif op is Opcode.BR or op is Opcode.JSR:
            tail = f"return ({instr.target}, True)"
        elif op is Opcode.RET or op is Opcode.JMP:
            tail = "return (npc, True)"
        elif op in _BRANCH_CONDITIONS:
            tail = "return (npc, t)"
        else:
            tail = "return None"
        if not body[-1].startswith("return ExecResult"):
            raise AssertionError(f"unexpected codegen tail: {body[-1]}")
        source = "def _f(S):\n    R = S.regs\n" + "\n".join(
            "    " + line for line in body[:-1] + [tail]
        )
        scope: dict = {}
        exec(
            compile(
                source,
                f"<semantics-fast {instr.opcode.value} @{instr.address:#x}>",
                "exec",
            ),
            _COMPILE_NS,
            scope,
        )
        fn = scope["_f"]
    object.__setattr__(instr, "_exec_fast", fn)
    return fn


def run_program(
    program: Program,
    max_instructions: int = 50_000_000,
    state: ArchState | None = None,
) -> ArchState:
    """Run a program functionally to completion (HALT).

    Raises :class:`SemanticsError` if the PC leaves the text section or the
    instruction budget is exhausted (runaway loop protection).
    """
    if state is None:
        state = ArchState(program)
    while not state.halted:
        instr = program.at(state.pc)
        if instr is None:
            raise SemanticsError(
                f"PC {state.pc:#x} outside text of program {program.name!r}"
            )
        state.execute(instr)
        if state.instructions_executed > max_instructions:
            raise SemanticsError(
                f"program {program.name!r} exceeded {max_instructions} instructions"
            )
    return state
