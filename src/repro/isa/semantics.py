"""Architectural semantics: the functional interpreter.

:class:`ArchState` executes one decoded instruction at a time against the
register file and memory, returning an :class:`ExecResult` describing the
outcome (next PC, destination value, memory effects).  The out-of-order
timing simulator drives the same interpreter instruction-by-instruction
down the correct path; :func:`run_program` runs a program standalone.

Values are stored as unsigned 64-bit integers; comparisons and branches
interpret them as signed where the opcode says so.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import (
    NUM_REGS,
    RETURN_ADDRESS_REG,
    STACK_POINTER_REG,
    ZERO_REG,
    Instruction,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import INSTRUCTION_BYTES, STACK_TOP, Program
from repro.mem.memory import PagedMemory
from repro.utils.bitops import (
    MASK64,
    count_leading_zeros,
    count_trailing_zeros,
    popcount,
    sign_extend,
    to_signed,
    wrap64,
)


@dataclass(frozen=True)
class ExecResult:
    """Outcome of executing one instruction."""

    next_pc: int
    dest_value: int | None = None       # unsigned 64-bit, None if no dest
    mem_address: int | None = None      # effective address for loads/stores
    store_value: int | None = None
    store_size: int = 8
    taken: bool | None = None           # for branches (conditional or not)
    halted: bool = False


class SemanticsError(RuntimeError):
    """The interpreter hit something it cannot execute."""


class ArchState:
    """Architectural registers + memory + PC."""

    def __init__(self, program: Program, memory: PagedMemory | None = None) -> None:
        self.program = program
        self.memory = memory if memory is not None else PagedMemory()
        self.regs = [0] * NUM_REGS
        self.regs[STACK_POINTER_REG] = STACK_TOP
        self.pc = program.entry
        self.halted = False
        self.instructions_executed = 0
        if program.data:
            self.memory.load_image(program.data_base, program.data)

    # -- operand helpers ------------------------------------------------------

    def read_reg(self, reg: int) -> int:
        return 0 if reg == ZERO_REG else self.regs[reg]

    def write_reg(self, reg: int, value: int) -> None:
        if reg != ZERO_REG:
            self.regs[reg] = value & MASK64

    def _value(self, instr: Instruction, index: int) -> int:
        op = instr.sources[index]
        if op.reg is not None:
            return self.read_reg(op.reg)
        return wrap64(op.imm)

    # -- the interpreter -------------------------------------------------------

    def execute(self, instr: Instruction) -> ExecResult:
        """Execute ``instr`` (which must be the instruction at the PC)."""
        result = self._dispatch(instr)
        if result.dest_value is not None and instr.dest is not None:
            self.write_reg(instr.dest, result.dest_value)
        if result.store_value is not None and result.mem_address is not None:
            self.memory.write(result.mem_address, result.store_value, result.store_size)
        self.pc = result.next_pc
        if result.halted:
            self.halted = True
        self.instructions_executed += 1
        return result

    def _dispatch(self, instr: Instruction) -> ExecResult:
        op = instr.opcode
        fall_through = instr.address + INSTRUCTION_BYTES
        v = self._value

        # -- three-operand arithmetic / logicals -------------------------------
        if op is Opcode.ADD:
            return ExecResult(fall_through, wrap64(v(instr, 0) + v(instr, 1)))
        if op is Opcode.SUB:
            return ExecResult(fall_through, wrap64(v(instr, 0) - v(instr, 1)))
        if op is Opcode.MUL:
            return ExecResult(fall_through, wrap64(v(instr, 0) * v(instr, 1)))
        if op is Opcode.S4ADD:
            return ExecResult(fall_through, wrap64((v(instr, 0) << 2) + v(instr, 1)))
        if op is Opcode.S8ADD:
            return ExecResult(fall_through, wrap64((v(instr, 0) << 3) + v(instr, 1)))
        if op is Opcode.S4SUB:
            return ExecResult(fall_through, wrap64((v(instr, 0) << 2) - v(instr, 1)))
        if op is Opcode.S8SUB:
            return ExecResult(fall_through, wrap64((v(instr, 0) << 3) - v(instr, 1)))
        if op is Opcode.AND:
            return ExecResult(fall_through, v(instr, 0) & v(instr, 1))
        if op is Opcode.BIS:
            return ExecResult(fall_through, v(instr, 0) | v(instr, 1))
        if op is Opcode.XOR:
            return ExecResult(fall_through, v(instr, 0) ^ v(instr, 1))
        if op is Opcode.BIC:
            return ExecResult(fall_through, v(instr, 0) & ~v(instr, 1) & MASK64)
        if op is Opcode.ORNOT:
            return ExecResult(fall_through, (v(instr, 0) | (~v(instr, 1) & MASK64)))
        if op is Opcode.EQV:
            return ExecResult(fall_through, (~(v(instr, 0) ^ v(instr, 1))) & MASK64)
        if op is Opcode.NOT:
            return ExecResult(fall_through, (~v(instr, 0)) & MASK64)

        # -- shifts --------------------------------------------------------------
        if op is Opcode.SLL:
            return ExecResult(fall_through, wrap64(v(instr, 0) << (v(instr, 1) & 63)))
        if op is Opcode.SRL:
            return ExecResult(fall_through, v(instr, 0) >> (v(instr, 1) & 63))
        if op is Opcode.SRA:
            return ExecResult(
                fall_through,
                wrap64(to_signed(v(instr, 0)) >> (v(instr, 1) & 63)),
            )

        # -- compares -------------------------------------------------------------
        if op is Opcode.CMPEQ:
            return ExecResult(fall_through, int(v(instr, 0) == v(instr, 1)))
        if op is Opcode.CMPLT:
            return ExecResult(
                fall_through, int(to_signed(v(instr, 0)) < to_signed(v(instr, 1)))
            )
        if op is Opcode.CMPLE:
            return ExecResult(
                fall_through, int(to_signed(v(instr, 0)) <= to_signed(v(instr, 1)))
            )
        if op is Opcode.CMPULT:
            return ExecResult(fall_through, int(v(instr, 0) < v(instr, 1)))
        if op is Opcode.CMPULE:
            return ExecResult(fall_through, int(v(instr, 0) <= v(instr, 1)))

        # -- conditional moves: sources are (test, new_value, old_dest) -------------
        if op in _CMOV_CONDITIONS:
            test = v(instr, 0)
            keep = _CMOV_CONDITIONS[op](test)
            return ExecResult(
                fall_through, v(instr, 1) if keep else v(instr, 2)
            )

        # -- byte manipulation --------------------------------------------------------
        if op is Opcode.EXTB:
            shift = (v(instr, 1) & 7) * 8
            return ExecResult(fall_through, (v(instr, 0) >> shift) & 0xFF)
        if op is Opcode.INSB:
            shift = (v(instr, 1) & 7) * 8
            return ExecResult(fall_through, (v(instr, 0) & 0xFF) << shift)
        if op is Opcode.MSKB:
            shift = (v(instr, 1) & 7) * 8
            return ExecResult(fall_through, v(instr, 0) & ~(0xFF << shift) & MASK64)
        if op is Opcode.ZAP:
            mask = 0
            zap_bits = v(instr, 1) & 0xFF
            for byte in range(8):
                if not (zap_bits >> byte) & 1:
                    mask |= 0xFF << (byte * 8)
            return ExecResult(fall_through, v(instr, 0) & mask)

        # -- counts -----------------------------------------------------------------------
        if op is Opcode.CTLZ:
            return ExecResult(fall_through, count_leading_zeros(v(instr, 0)))
        if op is Opcode.CTTZ:
            return ExecResult(fall_through, count_trailing_zeros(v(instr, 0)))
        if op is Opcode.CTPOP:
            return ExecResult(fall_through, popcount(v(instr, 0)))

        # -- address generation -------------------------------------------------------------
        if op is Opcode.LDA:
            return ExecResult(fall_through, wrap64(v(instr, 0) + instr.imm))
        if op is Opcode.LDAH:
            return ExecResult(fall_through, wrap64(v(instr, 0) + (instr.imm << 16)))

        # -- memory ----------------------------------------------------------------------------
        if op is Opcode.LDQ:
            address = wrap64(v(instr, 0) + instr.imm)
            return ExecResult(
                fall_through, self.memory.read(address, 8), mem_address=address
            )
        if op is Opcode.LDL:
            address = wrap64(v(instr, 0) + instr.imm)
            return ExecResult(
                fall_through,
                sign_extend(self.memory.read(address, 4), 32),
                mem_address=address,
            )
        if op is Opcode.STQ:
            address = wrap64(v(instr, 1) + instr.imm)
            return ExecResult(
                fall_through,
                mem_address=address,
                store_value=v(instr, 0),
                store_size=8,
            )
        if op is Opcode.STL:
            address = wrap64(v(instr, 1) + instr.imm)
            return ExecResult(
                fall_through,
                mem_address=address,
                store_value=v(instr, 0) & 0xFFFF_FFFF,
                store_size=4,
            )

        # -- control --------------------------------------------------------------------------------
        if op is Opcode.BR:
            return ExecResult(instr.target, taken=True)
        if op is Opcode.JSR:
            return ExecResult(instr.target, dest_value=fall_through, taken=True)
        if op is Opcode.RET:
            return ExecResult(self.read_reg(RETURN_ADDRESS_REG), taken=True)
        if op is Opcode.JMP:
            return ExecResult(v(instr, 0), taken=True)
        if op in _BRANCH_CONDITIONS:
            taken = _BRANCH_CONDITIONS[op](v(instr, 0))
            return ExecResult(instr.target if taken else fall_through, taken=taken)

        # -- fp-latency-class ops (fixed-point semantics, see DESIGN.md) --------------------------------
        if op is Opcode.FADD:
            return ExecResult(fall_through, wrap64(v(instr, 0) + v(instr, 1)))
        if op is Opcode.FMUL:
            return ExecResult(fall_through, wrap64(v(instr, 0) * v(instr, 1)))
        if op is Opcode.FDIV:
            divisor = to_signed(v(instr, 1))
            if divisor == 0:
                return ExecResult(fall_through, 0)
            quotient = int(to_signed(v(instr, 0)) / divisor)  # truncate toward zero
            return ExecResult(fall_through, wrap64(quotient))

        # -- misc ------------------------------------------------------------------------------------------
        if op is Opcode.NOP:
            return ExecResult(fall_through)
        if op is Opcode.HALT:
            return ExecResult(fall_through, halted=True)

        raise SemanticsError(f"no semantics for opcode {op}")


_BRANCH_CONDITIONS = {
    Opcode.BEQ: lambda value: value == 0,
    Opcode.BNE: lambda value: value != 0,
    Opcode.BLT: lambda value: to_signed(value) < 0,
    Opcode.BGE: lambda value: to_signed(value) >= 0,
    Opcode.BLE: lambda value: to_signed(value) <= 0,
    Opcode.BGT: lambda value: to_signed(value) > 0,
    Opcode.BLBC: lambda value: (value & 1) == 0,
    Opcode.BLBS: lambda value: (value & 1) == 1,
}

_CMOV_CONDITIONS = {
    Opcode.CMOVEQ: lambda value: value == 0,
    Opcode.CMOVNE: lambda value: value != 0,
    Opcode.CMOVLT: lambda value: to_signed(value) < 0,
    Opcode.CMOVGE: lambda value: to_signed(value) >= 0,
    Opcode.CMOVLE: lambda value: to_signed(value) <= 0,
    Opcode.CMOVGT: lambda value: to_signed(value) > 0,
    Opcode.CMOVLBS: lambda value: (value & 1) == 1,
    Opcode.CMOVLBC: lambda value: (value & 1) == 0,
}


def run_program(
    program: Program,
    max_instructions: int = 50_000_000,
    state: ArchState | None = None,
) -> ArchState:
    """Run a program functionally to completion (HALT).

    Raises :class:`SemanticsError` if the PC leaves the text section or the
    instruction budget is exhausted (runaway loop protection).
    """
    if state is None:
        state = ArchState(program)
    while not state.halted:
        instr = program.at(state.pc)
        if instr is None:
            raise SemanticsError(
                f"PC {state.pc:#x} outside text of program {program.name!r}"
            )
        state.execute(instr)
        if state.instructions_executed > max_instructions:
            raise SemanticsError(
                f"program {program.name!r} exceeded {max_instructions} instructions"
            )
    return state
