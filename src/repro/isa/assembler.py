"""A two-pass assembler for the mini Alpha-like ISA.

Syntax (one statement per line; ``;`` or ``#`` start a comment):

.. code-block:: text

    .text                     ; section directives
    main:                     ; labels
        lda   r1, table       ; label as absolute address (base r31)
        lda   r2, 64(r31)     ; displacement(base)
        ldq   r3, 8(r1)
        add   r3, #5, r3      ; '#' marks an immediate operand
        mov   r3, r4          ; expands to bis r3, r3, r4 (the MOVE idiom)
        beq   r3, done
        jsr   helper          ; writes the return address to r26
        br    main
    done:
        halt
    helper:
        ret

    .data
    table:  .quad 1, 2, 3     ; 64-bit values (labels allowed)
    buffer: .space 256        ; zero-filled bytes
            .long 7           ; 32-bit values
            .byte 1, 2
            .align 8

Registers are ``r0``-``r31`` with aliases ``zero`` (r31), ``sp`` (r30)
and ``ra`` (r26).  Text labels resolve to instruction addresses, data
labels to addresses in the data section.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.isa.instruction import Instruction, Operand
from repro.isa.opcodes import Opcode, Syntax, opcode_by_mnemonic, spec_of
from repro.isa.program import DATA_BASE, INSTRUCTION_BYTES, TEXT_BASE, Program

_REG_ALIASES = {"zero": 31, "sp": 30, "ra": 26}
_REG_RE = re.compile(r"^r(\d{1,2})$")
_MEM_RE = re.compile(r"^(?P<disp>[^()]*?)\s*\(\s*(?P<base>\w+)\s*\)$")
_LABEL_RE = re.compile(r"^[A-Za-z_][\w.$]*$")


class AssemblyError(ValueError):
    """A syntax or semantic error in assembly source."""

    def __init__(self, message: str, line_number: int | None = None, line: str = "") -> None:
        location = f" (line {line_number}: {line.strip()!r})" if line_number else ""
        super().__init__(f"{message}{location}")
        self.line_number = line_number


@dataclass
class _Statement:
    """One instruction statement after pass 1."""

    line_number: int
    line: str
    mnemonic: str
    operands: list[str]
    address: int


def _parse_register(token: str, stmt: _Statement) -> int:
    token = token.strip().lower()
    if token in _REG_ALIASES:
        return _REG_ALIASES[token]
    match = _REG_RE.match(token)
    if match:
        reg = int(match.group(1))
        if reg < 32:
            return reg
    raise AssemblyError(f"bad register {token!r}", stmt.line_number, stmt.line)


def _parse_int(token: str) -> int | None:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        return None


class _Assembler:
    def __init__(self, source: str, name: str) -> None:
        self.source = source
        self.name = name
        self.labels: dict[str, int] = {}
        self.statements: list[_Statement] = []
        self.data = bytearray()

    # -- pass 1: layout ---------------------------------------------------------

    def _strip(self, line: str) -> str:
        for comment_char in (";", "#"):
            index = line.find(comment_char)
            # '#' also introduces immediates; only treat it as a comment when
            # it starts the comment-looking tail (preceded by whitespace or BOL
            # and not followed by a digit or '-').
            if index >= 0:
                tail = line[index + 1:index + 2]
                if comment_char == "#" and tail and (tail.isdigit() or tail == "-"):
                    continue
                line = line[:index]
        return line.strip()

    def first_pass(self) -> None:
        section = "text"
        text_cursor = TEXT_BASE
        pending_data_labels: list[str] = []
        for line_number, raw in enumerate(self.source.splitlines(), start=1):
            line = self._strip(raw)
            if not line:
                continue
            # Peel off any leading labels.
            while True:
                match = re.match(r"^([A-Za-z_][\w.$]*)\s*:\s*(.*)$", line)
                if not match:
                    break
                label, line = match.groups()
                if label in self.labels or label in pending_data_labels:
                    raise AssemblyError(f"duplicate label {label!r}", line_number, raw)
                if section == "text":
                    self.labels[label] = text_cursor
                else:
                    pending_data_labels.append(label)
            if not line:
                if section == "data":
                    continue  # bare label in data: bound by the next directive
                continue
            if line.startswith("."):
                section, text_cursor = self._directive(
                    line, section, text_cursor, pending_data_labels, line_number, raw
                )
                continue
            if section != "text":
                raise AssemblyError("instruction outside .text", line_number, raw)
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operand_str = parts[1] if len(parts) > 1 else ""
            operands = [tok.strip() for tok in operand_str.split(",")] if operand_str else []
            self.statements.append(
                _Statement(line_number, raw, mnemonic, operands, text_cursor)
            )
            text_cursor += INSTRUCTION_BYTES

    def _directive(
        self,
        line: str,
        section: str,
        text_cursor: int,
        pending_data_labels: list[str],
        line_number: int,
        raw: str,
    ) -> tuple[str, int]:
        parts = line.split(None, 1)
        name = parts[0].lower()
        arg = parts[1].strip() if len(parts) > 1 else ""
        if name == ".text":
            return "text", text_cursor
        if name == ".data":
            return "data", text_cursor
        if section != "data":
            raise AssemblyError(f"directive {name} only valid in .data", line_number, raw)
        # Bind any labels waiting for a data location.
        for label in pending_data_labels:
            self.labels[label] = DATA_BASE + len(self.data)
        pending_data_labels.clear()
        if name == ".quad":
            self._emit_values(arg, 8, line_number, raw)
        elif name == ".long":
            self._emit_values(arg, 4, line_number, raw)
        elif name == ".byte":
            self._emit_values(arg, 1, line_number, raw)
        elif name == ".space":
            count = _parse_int(arg)
            if count is None or count < 0:
                raise AssemblyError(f"bad .space size {arg!r}", line_number, raw)
            self.data.extend(b"\x00" * count)
        elif name == ".align":
            align = _parse_int(arg)
            if align is None or align <= 0:
                raise AssemblyError(f"bad .align {arg!r}", line_number, raw)
            while len(self.data) % align:
                self.data.append(0)
        else:
            raise AssemblyError(f"unknown directive {name}", line_number, raw)
        return section, text_cursor

    def _emit_values(self, arg: str, size: int, line_number: int, raw: str) -> None:
        if not arg:
            raise AssemblyError("directive needs at least one value", line_number, raw)
        for token in arg.split(","):
            token = token.strip()
            value = _parse_int(token)
            if value is None:
                # Defer label references: record a fixup.
                self._fixups.append((len(self.data), size, token, line_number, raw))
                value = 0
            self.data.extend((value & ((1 << (size * 8)) - 1)).to_bytes(size, "little"))

    # -- pass 2: encode ------------------------------------------------------------

    def second_pass(self) -> list[Instruction]:
        instructions = []
        for stmt in self.statements:
            instructions.append(self._encode(stmt))
        return instructions

    def _resolve_label(self, token: str, stmt: _Statement) -> int:
        if token not in self.labels:
            raise AssemblyError(f"undefined label {token!r}", stmt.line_number, stmt.line)
        return self.labels[token]

    def _operand(self, token: str, stmt: _Statement) -> Operand:
        token = token.strip()
        if token.startswith("#"):
            value = _parse_int(token[1:])
            if value is None:
                raise AssemblyError(f"bad immediate {token!r}", stmt.line_number, stmt.line)
            return Operand(imm=value)
        return Operand(reg=_parse_register(token, stmt))

    def _encode(self, stmt: _Statement) -> Instruction:
        mnemonic = stmt.mnemonic
        operands = list(stmt.operands)
        if mnemonic == "mov":
            # mov ra, rc  ->  bis ra, ra, rc (the RB-transparent MOVE idiom)
            if len(operands) != 2:
                raise AssemblyError("mov needs 2 operands", stmt.line_number, stmt.line)
            operands = [operands[0], operands[0], operands[1]]
            mnemonic = "bis"
        try:
            opcode = opcode_by_mnemonic(mnemonic)
        except KeyError:
            raise AssemblyError(
                f"unknown mnemonic {mnemonic!r}", stmt.line_number, stmt.line
            ) from None
        spec = spec_of(opcode)
        # Diagnostic text keeps the *written* statement (pseudo-ops like
        # mov included), so regenerating source from a Program re-assembles.
        text = f"{stmt.mnemonic} {', '.join(stmt.operands)}".strip()

        if spec.syntax is Syntax.RRR:
            if len(operands) != 3:
                raise AssemblyError(
                    f"{mnemonic} needs 3 operands", stmt.line_number, stmt.line
                )
            a = self._operand(operands[0], stmt)
            b = self._operand(operands[1], stmt)
            dest = _parse_register(operands[2], stmt)
            sources: tuple[Operand, ...] = (a, b)
            if len(spec.operand_formats) == 3:  # conditional move: old dest value
                sources = (a, b, Operand(reg=dest))
            return Instruction(stmt.address, opcode, dest, sources, text=text)

        if spec.syntax is Syntax.RR:
            if len(operands) != 2:
                raise AssemblyError(
                    f"{mnemonic} needs 2 operands", stmt.line_number, stmt.line
                )
            a = self._operand(operands[0], stmt)
            dest = _parse_register(operands[1], stmt)
            return Instruction(stmt.address, opcode, dest, (a,), text=text)

        if spec.syntax is Syntax.MEM:
            if len(operands) != 2:
                raise AssemblyError(
                    f"{mnemonic} needs 2 operands", stmt.line_number, stmt.line
                )
            value_reg = _parse_register(operands[0], stmt)
            disp, base = self._parse_mem(operands[1], stmt)
            base_op = Operand(reg=base)
            if spec.is_store:
                return Instruction(
                    stmt.address, opcode, None,
                    (Operand(reg=value_reg), base_op), imm=disp, text=text,
                )
            return Instruction(
                stmt.address, opcode, value_reg, (base_op,), imm=disp, text=text
            )

        if spec.syntax is Syntax.CBR:
            if len(operands) != 2:
                raise AssemblyError(
                    f"{mnemonic} needs 2 operands", stmt.line_number, stmt.line
                )
            test = Operand(reg=_parse_register(operands[0], stmt))
            target = self._resolve_label(operands[1], stmt)
            return Instruction(
                stmt.address, opcode, None, (test,), target=target, text=text
            )

        if spec.syntax is Syntax.BR:
            if len(operands) != 1:
                raise AssemblyError(
                    f"{mnemonic} needs a target label", stmt.line_number, stmt.line
                )
            target = self._resolve_label(operands[0], stmt)
            dest = 26 if opcode is Opcode.JSR else None
            return Instruction(stmt.address, opcode, dest, (), target=target, text=text)

        if spec.syntax is Syntax.JMP:
            if len(operands) != 1:
                raise AssemblyError(
                    f"{mnemonic} needs (register)", stmt.line_number, stmt.line
                )
            match = re.match(r"^\(\s*(\w+)\s*\)$", operands[0])
            if not match:
                raise AssemblyError(
                    f"jmp operand must be (register), got {operands[0]!r}",
                    stmt.line_number, stmt.line,
                )
            reg = _parse_register(match.group(1), stmt)
            return Instruction(
                stmt.address, opcode, None, (Operand(reg=reg),), text=text
            )

        if spec.syntax is Syntax.NONE:
            if operands:
                raise AssemblyError(
                    f"{mnemonic} takes no operands", stmt.line_number, stmt.line
                )
            if opcode is Opcode.RET:
                return Instruction(
                    stmt.address, opcode, None, (Operand(reg=26),), text=text
                )
            return Instruction(stmt.address, opcode, None, (), text=text)

        raise AssemblyError(
            f"unhandled syntax for {mnemonic}", stmt.line_number, stmt.line
        )

    def _parse_mem(self, token: str, stmt: _Statement) -> tuple[int, int]:
        """Parse 'disp(base)', 'label', or 'label(base)'. Returns (disp, base)."""
        token = token.strip()
        match = _MEM_RE.match(token)
        if match:
            disp_token = match.group("disp").strip()
            base = _parse_register(match.group("base"), stmt)
            if not disp_token:
                return 0, base
            disp = _parse_int(disp_token)
            if disp is None:
                if not _LABEL_RE.match(disp_token):
                    raise AssemblyError(
                        f"bad displacement {disp_token!r}", stmt.line_number, stmt.line
                    )
                disp = self._resolve_label(disp_token, stmt)
            return disp, base
        # Bare label or bare number: absolute address with base r31.
        disp = _parse_int(token)
        if disp is None:
            disp = self._resolve_label(token, stmt)
        return disp, 31

    # shared fixup list for data label references
    _fixups: list

    def assemble(self) -> Program:
        self._fixups = []
        self.first_pass()
        instructions = self.second_pass()
        for offset, size, token, line_number, raw in self._fixups:
            if token not in self.labels:
                raise AssemblyError(f"undefined label {token!r}", line_number, raw)
            value = self.labels[token]
            self.data[offset:offset + size] = (
                value & ((1 << (size * 8)) - 1)
            ).to_bytes(size, "little")
        entry = self.labels.get("main", TEXT_BASE)
        return Program(
            instructions=instructions,
            labels=dict(self.labels),
            data=bytes(self.data),
            entry=entry,
            name=self.name,
        )


def assemble(source: str, name: str = "program") -> Program:
    """Assemble source text into a :class:`~repro.isa.program.Program`."""
    return _Assembler(source, name).assemble()


class ProgramBuilder:
    """Programmatic construction of assembly source (the generator hook).

    Collects text statements and data directives as structured calls and
    renders them into ordinary assembler syntax; :meth:`build` then runs
    the result through the same two-pass assembler as hand-written
    kernels, so everything a generator emits is validated by exactly one
    code path.  Used by the synthetic-workload generators and the
    :mod:`repro.verify.fuzz` random-program fuzzer.
    """

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._text: list[str] = ["    .text"]
        self._data: list[str] = []
        self._label_counts: dict[str, int] = {}

    # -- text section -----------------------------------------------------

    def label(self, name: str) -> str:
        """Place ``name:`` at the current text position and return it."""
        if not _LABEL_RE.match(name):
            raise AssemblyError(f"bad label {name!r}")
        self._text.append(f"{name}:")
        return name

    def fresh_label(self, stem: str) -> str:
        """A new unique label derived from ``stem`` (not yet placed)."""
        count = self._label_counts.get(stem, 0)
        self._label_counts[stem] = count + 1
        return f"{stem}_{count}"

    def emit(self, mnemonic: str, *operands: object) -> None:
        """Append one instruction; operands are rendered with str()."""
        rendered = ", ".join(str(op) for op in operands)
        self._text.append(f"    {mnemonic:<6} {rendered}".rstrip())

    def comment(self, text: str) -> None:
        self._text.append(f"    ; {text}")

    # -- data section -----------------------------------------------------

    def data_label(self, name: str) -> str:
        if not _LABEL_RE.match(name):
            raise AssemblyError(f"bad label {name!r}")
        self._ensure_data()
        self._data.append(f"{name}:")
        return name

    def space(self, nbytes: int) -> None:
        self._ensure_data()
        self._data.append(f"    .space {nbytes}")

    def quad(self, *values: object) -> None:
        self._ensure_data()
        self._data.append("    .quad " + ", ".join(str(v) for v in values))

    def _ensure_data(self) -> None:
        if not self._data:
            self._data.append("    .data")

    # -- rendering --------------------------------------------------------

    def source(self) -> str:
        return "\n".join(self._text + self._data) + "\n"

    def build(self) -> Program:
        """Assemble the accumulated source into a program."""
        return assemble(self.source(), self.name)
