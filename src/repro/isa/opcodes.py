"""Opcode definitions: the mini Alpha-like instruction set.

Every opcode carries three orthogonal attributes the paper's machines care
about:

* its **latency class** — the row of Table 3 that gives its execution
  latency on each machine model;
* its **result format** — whether an RB-output functional unit produces it
  in redundant binary first (Table 1's output column);
* its **operand formats** — whether each source may arrive in redundant
  binary or must be two's complement (Table 1's input column).  Stores are
  the mixed case: the address register may be redundant (SAM indexes the
  cache from it directly) while the store data must be two's complement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LatencyClass(enum.Enum):
    """Rows of Table 3 (plus control, which the table leaves implicit)."""

    INT_ARITH = "integer arithmetic"
    INT_LOGICAL = "integer logical"
    SHIFT_LEFT = "integer shift left"
    SHIFT_RIGHT = "integer shift right"
    INT_COMPARE = "integer compare"
    BYTE_MANIP = "byte manipulation"
    COUNT = "count (CTLZ/CTTZ/CTPOP)"
    INT_MUL = "integer multiply"
    FP_ARITH = "fp arithmetic"
    FP_DIV = "fp divide"
    MEM = "loads, stores (SAM decoder)"
    BRANCH = "conditional branch / jump"


class ResultFormat(enum.Enum):
    """What format an instruction's register result is produced in."""

    NONE = "none"  # no register destination
    RB = "rb"      # produced redundant binary first, TC after conversion
    TC = "tc"      # produced directly in two's complement


class OperandFormat(enum.Enum):
    """What format a source operand may arrive in."""

    RB_OK = "rb_ok"        # redundant binary or two's complement
    TC_ONLY = "tc_only"    # must be two's complement


class Syntax(enum.Enum):
    """Operand syntax shapes understood by the assembler."""

    RRR = "rrr"        # op ra, rb_or_imm, rc
    RR = "rr"          # op ra, rc            (unary: NOT, CTLZ, ...)
    MEM = "mem"        # op ra, disp(rb)
    CBR = "cbr"        # op ra, label
    BR = "br"          # op label             (also: jsr rd, label)
    JMP = "jmp"        # op (rb)              (indirect)
    NONE = "none"      # op                   (halt, nop, ret)


@dataclass(frozen=True)
class OpSpec:
    """Static properties of one opcode."""

    mnemonic: str
    latency_class: LatencyClass
    result: ResultFormat
    operand_formats: tuple[OperandFormat, ...]
    syntax: Syntax
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_conditional: bool = False
    writes_reg: bool = True


_RB = OperandFormat.RB_OK
_TC = OperandFormat.TC_ONLY


def _spec(
    mnemonic: str,
    latency_class: LatencyClass,
    result: ResultFormat,
    operand_formats: tuple[OperandFormat, ...],
    syntax: Syntax,
    **flags: bool,
) -> OpSpec:
    return OpSpec(mnemonic, latency_class, result, operand_formats, syntax, **flags)


class Opcode(enum.Enum):
    """All mnemonics of the mini ISA."""

    # arithmetic (RB in, RB out — Table 1 row 1)
    ADD = "add"
    SUB = "sub"
    LDA = "lda"        # rc = rb + imm (address/constant generation)
    LDAH = "ldah"      # rc = rb + (imm << 16)
    S4ADD = "s4add"
    S8ADD = "s8add"
    S4SUB = "s4sub"
    S8SUB = "s8sub"
    SLL = "sll"
    MUL = "mul"
    # conditional moves (RB in, RB out)
    CMOVEQ = "cmoveq"
    CMOVNE = "cmovne"
    CMOVLT = "cmovlt"
    CMOVGE = "cmovge"
    CMOVLE = "cmovle"
    CMOVGT = "cmovgt"
    CMOVLBS = "cmovlbs"
    CMOVLBC = "cmovlbc"
    # compares (RB in, TC out)
    CMPEQ = "cmpeq"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPULT = "cmpult"
    CMPULE = "cmpule"
    # logicals (TC in, TC out; same-register MOVE idiom is RB-transparent)
    AND = "and"
    BIS = "bis"        # OR
    XOR = "xor"
    BIC = "bic"
    ORNOT = "ornot"
    EQV = "eqv"
    NOT = "not"
    # shifts right (TC in)
    SRL = "srl"
    SRA = "sra"
    # byte manipulation (TC in, TC out)
    EXTB = "extb"
    INSB = "insb"
    MSKB = "mskb"
    ZAP = "zap"
    # counts
    CTLZ = "ctlz"      # TC in (needs the unique representation)
    CTTZ = "cttz"      # RB in (trailing non-zero digits)
    CTPOP = "ctpop"    # TC in
    # memory (address RB in via SAM; loads produce TC)
    LDQ = "ldq"
    LDL = "ldl"
    STQ = "stq"
    STL = "stl"
    # control
    BR = "br"
    JSR = "jsr"
    RET = "ret"
    JMP = "jmp"
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLE = "ble"
    BGT = "bgt"
    BLBC = "blbc"
    BLBS = "blbs"
    # fp (fixed-point semantics on the integer registers; exist to exercise
    # the Table 3 fp latency rows, which SPECint touches only lightly)
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"
    # misc
    NOP = "nop"
    HALT = "halt"


_ARITH = LatencyClass.INT_ARITH
_CMP = LatencyClass.INT_COMPARE
_LOG = LatencyClass.INT_LOGICAL

OPCODE_SPECS: dict[Opcode, OpSpec] = {
    # -- RB in, RB out arithmetic --------------------------------------------
    Opcode.ADD: _spec("add", _ARITH, ResultFormat.RB, (_RB, _RB), Syntax.RRR),
    Opcode.SUB: _spec("sub", _ARITH, ResultFormat.RB, (_RB, _RB), Syntax.RRR),
    Opcode.LDA: _spec("lda", _ARITH, ResultFormat.RB, (_RB,), Syntax.MEM),
    Opcode.LDAH: _spec("ldah", _ARITH, ResultFormat.RB, (_RB,), Syntax.MEM),
    Opcode.S4ADD: _spec("s4add", _ARITH, ResultFormat.RB, (_RB, _RB), Syntax.RRR),
    Opcode.S8ADD: _spec("s8add", _ARITH, ResultFormat.RB, (_RB, _RB), Syntax.RRR),
    Opcode.S4SUB: _spec("s4sub", _ARITH, ResultFormat.RB, (_RB, _RB), Syntax.RRR),
    Opcode.S8SUB: _spec("s8sub", _ARITH, ResultFormat.RB, (_RB, _RB), Syntax.RRR),
    Opcode.SLL: _spec("sll", LatencyClass.SHIFT_LEFT, ResultFormat.RB, (_RB, _RB), Syntax.RRR),
    Opcode.MUL: _spec("mul", LatencyClass.INT_MUL, ResultFormat.RB, (_RB, _RB), Syntax.RRR),
    # -- conditional moves: dest is also a source (keep-old-value semantics) ----
    Opcode.CMOVEQ: _spec("cmoveq", _ARITH, ResultFormat.RB, (_RB, _RB, _RB), Syntax.RRR),
    Opcode.CMOVNE: _spec("cmovne", _ARITH, ResultFormat.RB, (_RB, _RB, _RB), Syntax.RRR),
    Opcode.CMOVLT: _spec("cmovlt", _ARITH, ResultFormat.RB, (_RB, _RB, _RB), Syntax.RRR),
    Opcode.CMOVGE: _spec("cmovge", _ARITH, ResultFormat.RB, (_RB, _RB, _RB), Syntax.RRR),
    Opcode.CMOVLE: _spec("cmovle", _ARITH, ResultFormat.RB, (_RB, _RB, _RB), Syntax.RRR),
    Opcode.CMOVGT: _spec("cmovgt", _ARITH, ResultFormat.RB, (_RB, _RB, _RB), Syntax.RRR),
    Opcode.CMOVLBS: _spec("cmovlbs", _ARITH, ResultFormat.RB, (_RB, _RB, _RB), Syntax.RRR),
    Opcode.CMOVLBC: _spec("cmovlbc", _ARITH, ResultFormat.RB, (_RB, _RB, _RB), Syntax.RRR),
    # -- compares: RB inputs, TC (0/1) output --------------------------------
    Opcode.CMPEQ: _spec("cmpeq", _CMP, ResultFormat.RB, (_RB, _RB), Syntax.RRR),
    Opcode.CMPLT: _spec("cmplt", _CMP, ResultFormat.RB, (_RB, _RB), Syntax.RRR),
    Opcode.CMPLE: _spec("cmple", _CMP, ResultFormat.RB, (_RB, _RB), Syntax.RRR),
    Opcode.CMPULT: _spec("cmpult", _CMP, ResultFormat.RB, (_RB, _RB), Syntax.RRR),
    Opcode.CMPULE: _spec("cmpule", _CMP, ResultFormat.RB, (_RB, _RB), Syntax.RRR),
    # -- logicals: TC inputs (MOVE idiom handled in the timing model) -----------
    Opcode.AND: _spec("and", _LOG, ResultFormat.TC, (_TC, _TC), Syntax.RRR),
    Opcode.BIS: _spec("bis", _LOG, ResultFormat.TC, (_TC, _TC), Syntax.RRR),
    Opcode.XOR: _spec("xor", _LOG, ResultFormat.TC, (_TC, _TC), Syntax.RRR),
    Opcode.BIC: _spec("bic", _LOG, ResultFormat.TC, (_TC, _TC), Syntax.RRR),
    Opcode.ORNOT: _spec("ornot", _LOG, ResultFormat.TC, (_TC, _TC), Syntax.RRR),
    Opcode.EQV: _spec("eqv", _LOG, ResultFormat.TC, (_TC, _TC), Syntax.RRR),
    Opcode.NOT: _spec("not", _LOG, ResultFormat.TC, (_TC,), Syntax.RR),
    # -- right shifts: TC inputs --------------------------------------------------
    Opcode.SRL: _spec("srl", LatencyClass.SHIFT_RIGHT, ResultFormat.TC, (_TC, _TC), Syntax.RRR),
    Opcode.SRA: _spec("sra", LatencyClass.SHIFT_RIGHT, ResultFormat.TC, (_TC, _TC), Syntax.RRR),
    # -- byte manipulation: TC inputs ---------------------------------------------
    Opcode.EXTB: _spec("extb", LatencyClass.BYTE_MANIP, ResultFormat.TC, (_TC, _TC), Syntax.RRR),
    Opcode.INSB: _spec("insb", LatencyClass.BYTE_MANIP, ResultFormat.TC, (_TC, _TC), Syntax.RRR),
    Opcode.MSKB: _spec("mskb", LatencyClass.BYTE_MANIP, ResultFormat.TC, (_TC, _TC), Syntax.RRR),
    Opcode.ZAP: _spec("zap", LatencyClass.BYTE_MANIP, ResultFormat.TC, (_TC, _TC), Syntax.RRR),
    # -- counts ---------------------------------------------------------------------
    Opcode.CTLZ: _spec("ctlz", LatencyClass.COUNT, ResultFormat.TC, (_TC,), Syntax.RR),
    Opcode.CTTZ: _spec("cttz", LatencyClass.COUNT, ResultFormat.TC, (_RB,), Syntax.RR),
    Opcode.CTPOP: _spec("ctpop", LatencyClass.COUNT, ResultFormat.TC, (_TC,), Syntax.RR),
    # -- memory: the address operand may be redundant (SAM); loads return TC ------
    Opcode.LDQ: _spec("ldq", LatencyClass.MEM, ResultFormat.TC, (_RB,), Syntax.MEM,
                      is_load=True),
    Opcode.LDL: _spec("ldl", LatencyClass.MEM, ResultFormat.TC, (_RB,), Syntax.MEM,
                      is_load=True),
    Opcode.STQ: _spec("stq", LatencyClass.MEM, ResultFormat.NONE, (_TC, _RB), Syntax.MEM,
                      is_store=True, writes_reg=False),
    Opcode.STL: _spec("stl", LatencyClass.MEM, ResultFormat.NONE, (_TC, _RB), Syntax.MEM,
                      is_store=True, writes_reg=False),
    # -- control -----------------------------------------------------------------------
    Opcode.BR: _spec("br", LatencyClass.BRANCH, ResultFormat.NONE, (), Syntax.BR,
                     is_branch=True, writes_reg=False),
    Opcode.JSR: _spec("jsr", LatencyClass.BRANCH, ResultFormat.TC, (), Syntax.BR,
                      is_branch=True),
    Opcode.RET: _spec("ret", LatencyClass.BRANCH, ResultFormat.NONE, (_RB,), Syntax.NONE,
                      is_branch=True, writes_reg=False),
    Opcode.JMP: _spec("jmp", LatencyClass.BRANCH, ResultFormat.NONE, (_RB,), Syntax.JMP,
                      is_branch=True, writes_reg=False),
    Opcode.BEQ: _spec("beq", LatencyClass.BRANCH, ResultFormat.NONE, (_RB,), Syntax.CBR,
                      is_branch=True, is_conditional=True, writes_reg=False),
    Opcode.BNE: _spec("bne", LatencyClass.BRANCH, ResultFormat.NONE, (_RB,), Syntax.CBR,
                      is_branch=True, is_conditional=True, writes_reg=False),
    Opcode.BLT: _spec("blt", LatencyClass.BRANCH, ResultFormat.NONE, (_RB,), Syntax.CBR,
                      is_branch=True, is_conditional=True, writes_reg=False),
    Opcode.BGE: _spec("bge", LatencyClass.BRANCH, ResultFormat.NONE, (_RB,), Syntax.CBR,
                      is_branch=True, is_conditional=True, writes_reg=False),
    Opcode.BLE: _spec("ble", LatencyClass.BRANCH, ResultFormat.NONE, (_RB,), Syntax.CBR,
                      is_branch=True, is_conditional=True, writes_reg=False),
    Opcode.BGT: _spec("bgt", LatencyClass.BRANCH, ResultFormat.NONE, (_RB,), Syntax.CBR,
                      is_branch=True, is_conditional=True, writes_reg=False),
    Opcode.BLBC: _spec("blbc", LatencyClass.BRANCH, ResultFormat.NONE, (_RB,), Syntax.CBR,
                       is_branch=True, is_conditional=True, writes_reg=False),
    Opcode.BLBS: _spec("blbs", LatencyClass.BRANCH, ResultFormat.NONE, (_RB,), Syntax.CBR,
                       is_branch=True, is_conditional=True, writes_reg=False),
    # -- fp ---------------------------------------------------------------------------------
    Opcode.FADD: _spec("fadd", LatencyClass.FP_ARITH, ResultFormat.TC, (_TC, _TC), Syntax.RRR),
    Opcode.FMUL: _spec("fmul", LatencyClass.FP_ARITH, ResultFormat.TC, (_TC, _TC), Syntax.RRR),
    Opcode.FDIV: _spec("fdiv", LatencyClass.FP_DIV, ResultFormat.TC, (_TC, _TC), Syntax.RRR),
    # -- misc -------------------------------------------------------------------------------
    Opcode.NOP: _spec("nop", _LOG, ResultFormat.NONE, (), Syntax.NONE, writes_reg=False),
    Opcode.HALT: _spec("halt", _LOG, ResultFormat.NONE, (), Syntax.NONE, writes_reg=False),
}

_BY_MNEMONIC = {spec.mnemonic: op for op, spec in OPCODE_SPECS.items()}
# Friendly aliases.
_BY_MNEMONIC["or"] = Opcode.BIS
_BY_MNEMONIC["mov"] = Opcode.BIS  # expanded by the assembler to bis ra, ra, rc


def spec_of(opcode: Opcode) -> OpSpec:
    """The static spec for an opcode."""
    return OPCODE_SPECS[opcode]


def opcode_by_mnemonic(mnemonic: str) -> Opcode:
    """Look an opcode up by assembly mnemonic (case-insensitive)."""
    op = _BY_MNEMONIC.get(mnemonic.lower())
    if op is None:
        raise KeyError(f"unknown mnemonic {mnemonic!r}")
    return op
