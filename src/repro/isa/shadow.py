"""Shadow execution: run a whole program through the redundant datapath.

The timing simulator treats formats as metadata for speed; this module is
the fidelity check behind that shortcut.  :class:`ShadowRBInterpreter`
executes a program twice in lockstep — once with plain integer semantics
(authoritative), once carrying every RB-capable value through
:mod:`repro.rb` in redundant form, forwarding redundant intermediate
results between dependent operations exactly as the paper's machines do
(§3.6, §4.1) — and cross-checks every result:

* ADD/SUB/LDA/LDAH/SxADD/SxSUB/MUL results via the carry-free adder
  (redundant operands in, redundant result out, decoded only to compare);
* SLL via digit shifting with MSD renormalization;
* compares (signed and unsigned) via redundant subtraction and the
  most-significant-non-zero-digit sign test, with a 65-digit zero-extended
  subtract for the unsigned forms;
* conditional moves and branches via the redundant zero/sign/LSB tests;
* CTTZ via trailing-zero-digit counting;
* every load/store address via the sum-addressed-memory equality test
  with the redundant base and two's-complement displacement (§3.6's
  modified SAM) — no address is ever converted;
* TC-only consumers (logicals, byte ops, right shifts, CTLZ/CTPOP, store
  data) via the carry-propagating RB -> TC conversion, checking that the
  converted value matches the integer interpreter.

A mismatch anywhere means the redundant arithmetic and the ISA semantics
disagree; the suite runs kernels through this with zero tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.sam import sam_match_redundant
from repro.isa.instruction import Instruction, ZERO_REG
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.semantics import ArchState, ExecResult
from repro.rb.adder import rb_add, rb_sub
from repro.rb.convert import from_twos_complement, to_twos_complement_bits
from repro.rb.number import RBNumber
from repro.rb.ops import (
    count_trailing_zero_digits,
    is_zero,
    lsb_set,
    scaled_add,
    shift_left_digits,
    sign_of,
)

WIDTH = 64

#: Classes handled natively in the redundant domain.
_ADD_LIKE = {Opcode.ADD, Opcode.SUB, Opcode.S4ADD, Opcode.S8ADD,
             Opcode.S4SUB, Opcode.S8SUB}
_CMOVS = {
    Opcode.CMOVEQ: lambda rb: is_zero(rb),
    Opcode.CMOVNE: lambda rb: not is_zero(rb),
    Opcode.CMOVLT: lambda rb: sign_of(rb) < 0,
    Opcode.CMOVGE: lambda rb: sign_of(rb) >= 0,
    Opcode.CMOVLE: lambda rb: sign_of(rb) <= 0,
    Opcode.CMOVGT: lambda rb: sign_of(rb) > 0,
    Opcode.CMOVLBS: lambda rb: lsb_set(rb),
    Opcode.CMOVLBC: lambda rb: not lsb_set(rb),
}
_BRANCH_TESTS = {
    Opcode.BEQ: lambda rb: is_zero(rb),
    Opcode.BNE: lambda rb: not is_zero(rb),
    Opcode.BLT: lambda rb: sign_of(rb) < 0,
    Opcode.BGE: lambda rb: sign_of(rb) >= 0,
    Opcode.BLE: lambda rb: sign_of(rb) <= 0,
    Opcode.BGT: lambda rb: sign_of(rb) > 0,
    Opcode.BLBS: lambda rb: lsb_set(rb),
    Opcode.BLBC: lambda rb: not lsb_set(rb),
}


@dataclass
class Mismatch:
    """One disagreement between the redundant and integer datapaths."""

    instruction: Instruction
    kind: str
    expected: object
    got: object

    def __repr__(self) -> str:
        return (f"Mismatch({self.kind} at {self.instruction!r}: "
                f"expected {self.expected}, got {self.got})")


@dataclass
class ShadowReport:
    """Outcome of a shadow run."""

    instructions: int = 0
    rb_checks: int = 0          # results produced and compared in RB form
    conversion_checks: int = 0  # RB -> TC conversions validated
    sam_checks: int = 0         # redundant addresses validated via SAM
    test_checks: int = 0        # sign/zero/LSB condition tests validated
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.mismatches

    def total_checks(self) -> int:
        return (self.rb_checks + self.conversion_checks
                + self.sam_checks + self.test_checks)


class ShadowRBInterpreter:
    """Lockstep integer + redundant-binary execution of one program."""

    def __init__(self, program: Program, check_multiplies: bool = False) -> None:
        self.program = program
        self.state = ArchState(program)
        # Redundant mirror of the register file: None = TC-only value
        # (produced by a load, logical, byte op, ...).
        self.rb_regs: list[RBNumber | None] = [None] * 32
        self.report = ShadowReport()
        #: With True, MULs run through the full partial-product redundant
        #: multiplier (64 carry-free adds per MUL — thorough but slow);
        #: otherwise the multiplier's renormalized output is modelled as
        #: the hardwired re-encoding of the exact product.
        self.check_multiplies = check_multiplies
        self._pending_branch: tuple | None = None

    # -- operand plumbing ---------------------------------------------------

    def _rb_source(self, instr: Instruction, index: int) -> RBNumber:
        """The redundant form of a source operand.

        A forwarded redundant value is used as-is; TC values take the
        hardwired (free) TC -> RB encoding.
        """
        operand = instr.sources[index]
        if operand.reg is not None:
            if operand.reg != ZERO_REG:
                mirrored = self.rb_regs[operand.reg]
                if mirrored is not None:
                    return mirrored
            return from_twos_complement(self.state.read_reg(operand.reg), WIDTH)
        return from_twos_complement(operand.imm, WIDTH)

    def _flag(self, instr: Instruction, kind: str, expected, got) -> None:
        self.report.mismatches.append(Mismatch(instr, kind, expected, got))

    def _check_result(self, instr: Instruction, rb_value: RBNumber,
                      expected_bits: int) -> None:
        self.report.rb_checks += 1
        got = to_twos_complement_bits(rb_value)
        if got != expected_bits:
            self._flag(instr, "rb-result", expected_bits, got)

    # -- one instruction --------------------------------------------------------

    def step(self) -> bool:
        """Execute one instruction in both domains; False when halted."""
        instr = self.program.at(self.state.pc)
        if instr is None:
            raise RuntimeError(f"shadow run left text at {self.state.pc:#x}")
        opcode = instr.opcode
        spec = instr.spec

        # Gather redundant operands *before* architectural execution.
        rb_result: RBNumber | None = None
        dest = instr.dest

        if opcode in _ADD_LIKE:
            x = self._rb_source(instr, 0)
            y = self._rb_source(instr, 1)
            if opcode is Opcode.ADD:
                rb_result = rb_add(x, y).value
            elif opcode is Opcode.SUB:
                rb_result = rb_sub(x, y).value
            elif opcode is Opcode.S4ADD:
                rb_result = scaled_add(x, y, 2).value
            elif opcode is Opcode.S8ADD:
                rb_result = scaled_add(x, y, 3).value
            elif opcode is Opcode.S4SUB:
                rb_result = scaled_add(x, y.negated(), 2).value
            else:  # S8SUB
                rb_result = scaled_add(x, y.negated(), 3).value
        elif opcode in (Opcode.LDA, Opcode.LDAH):
            base = self._rb_source(instr, 0)
            shift = 16 if opcode is Opcode.LDAH else 0
            displacement = from_twos_complement(instr.imm << shift, WIDTH)
            rb_result = rb_add(base, displacement).value
        elif opcode is Opcode.SLL:
            x = self._rb_source(instr, 0)
            amount = self._tc_value(instr, 1) & 63
            rb_result, _ = shift_left_digits(x, amount)
        elif opcode is Opcode.MUL:
            if self.check_multiplies:
                from repro.rb.multiply import rb_multiply
                rb_result = rb_multiply(
                    self._rb_source(instr, 0), self._rb_source(instr, 1)
                )
            # Otherwise the redundant-tree multiplier's renormalized output
            # is modelled as the hardwired re-encoding of the exact product
            # (applied after execution below).
        elif opcode in _CMOVS:
            test = self._rb_source(instr, 0)
            keep = _CMOVS[opcode](test)
            self.report.test_checks += 1
            rb_result = (self._rb_source(instr, 1) if keep
                         else self._rb_source(instr, 2))
        elif opcode in (Opcode.CMPEQ, Opcode.CMPLT, Opcode.CMPLE):
            rb_result = self._signed_compare(instr, opcode)
        elif opcode in (Opcode.CMPULT, Opcode.CMPULE):
            rb_result = self._unsigned_compare(instr, opcode)
        elif opcode is Opcode.CTTZ:
            x = self._rb_source(instr, 0)
            rb_result = from_twos_complement(count_trailing_zero_digits(x), WIDTH)
        elif opcode in _BRANCH_TESTS:
            test = self._rb_source(instr, 0)
            rb_taken = _BRANCH_TESTS[opcode](test)
            self._pending_branch = (instr, rb_taken)
        elif spec.is_load or spec.is_store:
            self._check_sam_address(instr, spec.is_store)
        elif opcode is Opcode.BIS and self._is_move(instr):
            source = instr.sources[0].reg
            rb_result = (self.rb_regs[source] if source != ZERO_REG else None)

        # TC-only consumers force a validated conversion of RB sources.
        if not spec.is_branch:
            self._validate_tc_inputs(instr)

        result = self.state.execute(instr)
        self.report.instructions += 1

        # Post-execution checks and redundant register-file update.
        if opcode in _BRANCH_TESTS:
            instr_, rb_taken = self._pending_branch
            self.report.test_checks += 1
            if rb_taken != result.taken:
                self._flag(instr, "branch-test", result.taken, rb_taken)
        if dest is not None and dest != ZERO_REG and spec.writes_reg:
            if opcode is Opcode.MUL and rb_result is None:
                rb_result = from_twos_complement(self.state.regs[dest], WIDTH)
            if rb_result is not None:
                self._check_result(instr, rb_result, self.state.regs[dest])
                self.rb_regs[dest] = rb_result
            else:
                self.rb_regs[dest] = None

        return not self.state.halted

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _is_move(instr: Instruction) -> bool:
        regs = [op.reg for op in instr.sources if op.reg is not None]
        return len(instr.sources) == 2 and len(regs) == 2 and regs[0] == regs[1]

    def _tc_value(self, instr: Instruction, index: int) -> int:
        operand = instr.sources[index]
        if operand.reg is not None:
            return self.state.read_reg(operand.reg)
        return operand.imm & ((1 << WIDTH) - 1)

    def _signed_compare(self, instr: Instruction, opcode: Opcode) -> RBNumber:
        x = self._rb_source(instr, 0)
        y = self._rb_source(instr, 1)
        difference = rb_sub(x, y)
        sign = sign_of(difference.value)
        if difference.overflow:
            sign = -sign
        self.report.test_checks += 1
        if opcode is Opcode.CMPEQ:
            flag = is_zero(difference.value)
        elif opcode is Opcode.CMPLT:
            flag = sign < 0
        else:  # CMPLE
            flag = sign <= 0
        return from_twos_complement(int(flag), WIDTH)

    def _unsigned_compare(self, instr: Instruction, opcode: Opcode) -> RBNumber:
        """Unsigned compares via a 65-digit zero-extended subtraction.

        The unsigned value of a wrapped operand is its signed value plus
        2**64 when negative; the sign test (most significant non-zero
        digit) supplies that bit without any conversion.
        """
        x = self._zero_extend_unsigned(self._rb_source(instr, 0))
        y = self._zero_extend_unsigned(self._rb_source(instr, 1))
        difference = rb_sub(x, y)
        sign = sign_of(difference.value)
        if difference.overflow:
            sign = -sign
        self.report.test_checks += 1
        flag = sign < 0 if instr.opcode is Opcode.CMPULT else sign <= 0
        return from_twos_complement(int(flag), WIDTH)

    @staticmethod
    def _zero_extend_unsigned(value: RBNumber) -> RBNumber:
        negative = sign_of(value) < 0
        plus = value.plus | ((1 << WIDTH) if negative else 0)
        return RBNumber(WIDTH + 2, plus, value.minus)

    def _check_sam_address(self, instr: Instruction, is_store: bool) -> None:
        """Validate the memory index through the modified SAM (§3.6)."""
        base_index = 1 if is_store else 0
        base = self._rb_source(instr, base_index)
        displacement = instr.imm or 0
        true_index = (to_twos_complement_bits(base) + displacement) % (1 << WIDTH)
        self.report.sam_checks += 1
        if not sam_match_redundant(base.plus, base.minus, displacement,
                                   true_index, WIDTH):
            self._flag(instr, "sam-address", true_index, None)

    def _validate_tc_inputs(self, instr: Instruction) -> None:
        """Every TC-only operand whose register holds a redundant value
        models the converter: the decoded bits must equal the
        architectural value."""
        from repro.isa.opcodes import OperandFormat
        formats = instr.spec.operand_formats
        for position, operand in enumerate(instr.sources):
            if operand.reg is None or operand.reg == ZERO_REG:
                continue
            if position >= len(formats):
                continue
            if formats[position] is not OperandFormat.TC_ONLY:
                continue
            mirrored = self.rb_regs[operand.reg]
            if mirrored is None:
                continue
            self.report.conversion_checks += 1
            converted = to_twos_complement_bits(mirrored)
            actual = self.state.read_reg(operand.reg)
            if converted != actual:
                self._flag(instr, "conversion", actual, converted)

    # -- whole-program run -----------------------------------------------------------

    def run(self, max_instructions: int = 500_000) -> ShadowReport:
        while self.step():
            if self.report.instructions > max_instructions:
                raise RuntimeError(
                    f"shadow run exceeded {max_instructions} instructions"
                )
        return self.report


def shadow_check(program: Program, max_instructions: int = 500_000) -> ShadowReport:
    """Run a program through the shadow interpreter and return its report."""
    return ShadowRBInterpreter(program).run(max_instructions)
