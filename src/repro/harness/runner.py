"""Simulation runner with a persistent result cache.

A full figure sweep is hundreds of (machine, workload) simulations;
several figures share the same runs (Figs. 9-12 share machines with the
§5.2 study, Fig. 14 reuses the Ideal results).  The runner memoizes
results in memory and, optionally, in a JSON file keyed by machine name,
workload name, and a schema version, so re-running a benchmark after the
first sweep is cheap.  Bump ``RESULTS_VERSION`` whenever the timing model
changes in a way that invalidates old numbers.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.config import MachineConfig
from repro.core.machine import Machine
from repro.core.statistics import BypassCase, BypassLevelUse, SimStats
from repro.utils.stats import Distribution
from repro.workloads.suite import build

RESULTS_VERSION = 4

#: The SimStats fields persisted to disk (Distributions handled separately).
_SCALAR_FIELDS = (
    "cycles", "instructions", "branches", "mispredictions",
    "fetch_stall_cycles", "dcache_hits", "dcache_misses",
    "icache_misses", "l2_misses", "instructions_with_bypass",
    "cross_cluster_bypasses", "bypassed_sources",
    "scheduler_occupancy_samples", "scheduler_occupancy_sum",
)


class ResultCache:
    """JSON-backed cache of simulation statistics."""

    def __init__(self, path: Path | str | None) -> None:
        self.path = Path(path) if path is not None else None
        self._data: dict[str, dict] = {}
        if self.path is not None and self.path.exists():
            try:
                loaded = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError):
                loaded = {}
            if loaded.get("version") == RESULTS_VERSION:
                self._data = loaded.get("results", {})

    @staticmethod
    def key(machine: str, workload: str) -> str:
        return f"{machine}::{workload}"

    def get(self, machine: str, workload: str) -> SimStats | None:
        entry = self._data.get(self.key(machine, workload))
        if entry is None:
            return None
        return _stats_from_dict(entry)

    def put(self, stats: SimStats) -> None:
        self._data[self.key(stats.machine, stats.workload)] = _stats_to_dict(stats)

    def save(self) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": RESULTS_VERSION, "results": self._data}
        self.path.write_text(json.dumps(payload))

    def __len__(self) -> int:
        return len(self._data)


def _stats_to_dict(stats: SimStats) -> dict:
    entry = {name: getattr(stats, name) for name in _SCALAR_FIELDS}
    entry["machine"] = stats.machine
    entry["workload"] = stats.workload
    entry["bypass_cases"] = {
        case.name: stats.bypass_cases.count(case) for case in BypassCase
    }
    entry["bypass_levels"] = {
        use.name: stats.bypass_levels.count(use) for use in BypassLevelUse
    }
    return entry


def _stats_from_dict(entry: dict) -> SimStats:
    stats = SimStats(machine=entry["machine"], workload=entry["workload"])
    for name in _SCALAR_FIELDS:
        setattr(stats, name, entry[name])
    cases = Distribution()
    for name, count in entry["bypass_cases"].items():
        if count:
            cases.record(BypassCase[name], count)
    stats.bypass_cases = cases
    levels = Distribution()
    for name, count in entry["bypass_levels"].items():
        if count:
            levels.record(BypassLevelUse[name], count)
    stats.bypass_levels = levels
    return stats


class SimulationRunner:
    """Runs (machine config, workload name) pairs through the cache."""

    def __init__(self, cache_path: Path | str | None = None) -> None:
        if cache_path is None:
            cache_path = Path(__file__).resolve().parents[3] / ".repro_cache" / "results.json"
        self.cache = ResultCache(cache_path)
        self._machines: dict[str, Machine] = {}

    def run(self, config: MachineConfig, workload: str) -> SimStats:
        """One simulation, served from cache when available."""
        cached = self.cache.get(config.name, workload)
        if cached is not None:
            return cached
        machine = self._machines.get(config.name)
        if machine is None:
            machine = Machine(config)
            self._machines[config.name] = machine
        stats = machine.run(build(workload))
        self.cache.put(stats)
        self.cache.save()
        return stats

    def run_matrix(
        self, configs: list[MachineConfig], workloads: list[str]
    ) -> dict[tuple[str, str], SimStats]:
        """The full cross product, cached."""
        return {
            (config.name, workload): self.run(config, workload)
            for config in configs
            for workload in workloads
        }


_default_runner: SimulationRunner | None = None


def default_runner() -> SimulationRunner:
    """A process-wide shared runner (shared cache across experiments)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = SimulationRunner()
    return _default_runner
