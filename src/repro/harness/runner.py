"""Simulation runner with a persistent result cache and host profiling.

A full figure sweep is hundreds of (machine, workload) simulations;
several figures share the same runs (Figs. 9-12 share machines with the
§5.2 study, Fig. 14 reuses the Ideal results).  The runner memoizes
results in memory and, optionally, in a JSON file keyed by machine name,
workload name, and a schema version, so re-running a benchmark after the
first sweep is cheap.  Bump ``RESULTS_VERSION`` whenever the timing model
changes in a way that invalidates old numbers.

Serialization is :meth:`SimStats.to_dict` / :meth:`SimStats.from_dict`
(scalar fields by dataclass introspection plus the generic metrics
registry), so new counters persist without touching this module.

Every uncached simulation is also timed on the host and appended to
``BENCH_obs.json`` (see :mod:`repro.obs.profile`), giving performance
work a measured trajectory; cache hits/misses/invalidations are counted
in the runner's metrics registry.

Persistence is batched: :meth:`SimulationRunner.run` only marks the
cache dirty, and :meth:`SimulationRunner.flush` (called automatically at
the end of every :meth:`SimulationRunner.run_matrix`, or by using the
runner as a context manager) writes the cache and bench log once.  Both
files are written atomically (temp file + rename), so an interrupted
sweep never leaves a truncated cache behind.

:meth:`SimulationRunner.run_matrix` can fan uncached pairs out over a
process pool (``jobs=N`` on the call or the runner, or the
``REPRO_JOBS`` environment variable for the shared default runner);
workers return serialized stats and profiles, which the parent merges
into the shared cache and bench log exactly as the serial path would.

:meth:`SimulationRunner.run_jobs` is the batch-service entry point: it
takes an explicit list of :class:`SimJob` (heterogeneous machines and
workloads, not a cross product) plus a wall-clock ``timeout`` and a
``cancel`` event, and the cache can be sharded across many files
(``shards=N``) so concurrent flushes never rewrite one giant JSON blob.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import asdict, dataclass
from pathlib import Path

import json

from repro.core.config import MachineConfig
from repro.core.machine import Machine
from repro.core.statistics import SimStats
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import BENCH_FILENAME, BenchLog, RunProfile
from repro.obs.trace import TraceContext, Tracer
from repro.utils.files import atomic_write_text, shard_path, stable_shard
from repro.workloads.suite import build

log = get_logger(__name__)

# 8: cache entries carry an interval-timeline sibling key next to the
# SimStats fields (repro.obs.timeline).
RESULTS_VERSION = 8


class MatrixWorkerError(RuntimeError):
    """A process-pool worker crashed while simulating one (machine, workload).

    Raised by :meth:`SimulationRunner.run_matrix` *after* every completed
    sibling's result has been merged and flushed, so one bad pair never
    discards the rest of a sweep.  ``machine`` and ``workload`` identify
    the failing pair; the worker's exception is chained as ``__cause__``.
    """

    def __init__(self, machine: str, workload: str, cause: BaseException) -> None:
        super().__init__(
            f"worker failed simulating {machine} on {workload}: {cause!r}"
        )
        self.machine = machine
        self.workload = workload


class MatrixCancelled(RuntimeError):
    """A sweep was cancelled via its ``cancel`` event.

    Raised *after* every already-completed result has been merged and
    flushed; jobs that never started are simply not in the cache.
    """


@dataclass(frozen=True)
class SimJob:
    """One (machine configuration, workload) unit of simulation work.

    The job abstraction lets callers — notably the ``repro.serve`` batch
    service — hand the runner heterogeneous batches (mixed machines,
    widths, and workloads) instead of a dense config x workload cross
    product.  ``key`` is the identity used for result-cache lookups and
    in-flight deduplication; ``trace`` is deliberately *not* part of it,
    so tracing never perturbs caching or coalescing.
    """

    config: MachineConfig
    workload: str
    #: parent trace context for request-scoped tracing (picklable; rides
    #: to pool workers next to the workload name).
    trace: TraceContext | None = None
    #: live observer for interval-timeline rows (serial path only: a
    #: callable cannot cross the process-pool boundary, so pooled jobs
    #: deliver their timeline with the completed result instead).  Not
    #: part of ``key``, so observation never perturbs caching.
    row_sink: object | None = None

    @property
    def key(self) -> tuple[str, str]:
        return (self.config.name, self.workload)


class ResultCache:
    """JSON-backed cache of simulation statistics.

    Two on-disk layouts share one API:

    * **single file** (``shards=None``, the default) — the historical
      layout: one ``results.json`` holding every entry;
    * **sharded directory** (``shards=N``) — ``path`` is a directory of
      ``shard-NNN.json`` files and each ``machine::workload`` key maps to
      one shard by a stable CRC-32 hash.  A save only rewrites *dirty*
      shards, so concurrent writers (several service processes sharing a
      cache directory, or interleaved batch flushes) almost never contend
      on — or rewrite — the same file, and a flush after a small batch is
      O(batch) instead of O(cache).
    """

    def __init__(
        self,
        path: Path | str | None,
        metrics: MetricsRegistry | None = None,
        shards: int | None = None,
    ) -> None:
        if shards is not None and shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        self.path = Path(path) if path is not None else None
        self.shards = shards
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter("cache.hits")
        self._misses = self.metrics.counter("cache.misses")
        self._invalidations = self.metrics.counter("cache.invalidations")
        self._data: dict[str, dict] = {}
        self._dirty_shards: set[int] = set()
        if self.path is None:
            return
        if self.shards is None:
            if self.path.exists():
                self._data = self._load_file(self.path)
        elif self.path.exists():
            for index in range(self.shards):
                file = shard_path(self.path, index)
                if file.exists():
                    self._data.update(self._load_file(file))

    def _load_file(self, file: Path) -> dict[str, dict]:
        try:
            loaded = json.loads(file.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            log.warning(
                "result cache %s is unreadable (%s); starting with an empty cache",
                file, exc,
            )
            self._invalidations.inc()
            return {}
        if loaded.get("version") == RESULTS_VERSION:
            return loaded.get("results", {})
        if loaded:
            log.warning(
                "result cache %s has version %r, expected %r; discarding %d entries",
                file, loaded.get("version"), RESULTS_VERSION,
                len(loaded.get("results", {})),
            )
            self._invalidations.inc()
        return {}

    @staticmethod
    def key(machine: str, workload: str) -> str:
        return f"{machine}::{workload}"

    def shard_of(self, key: str) -> int:
        """The shard index holding ``key`` (sharded layout only)."""
        if self.shards is None:
            raise ValueError("shard_of() on an unsharded ResultCache")
        return stable_shard(key, self.shards)

    def get(self, machine: str, workload: str) -> SimStats | None:
        entry = self._data.get(self.key(machine, workload))
        if entry is None:
            self._misses.inc()
            return None
        self._hits.inc()
        return SimStats.from_dict(entry)

    def put(self, stats: SimStats) -> None:
        key = self.key(stats.machine, stats.workload)
        entry = stats.to_dict()
        # The interval timeline is a dynamic attribute (like stats.trace)
        # kept out of the SimStats schema; persist it as a sibling key so
        # cached results replay it (SimStats.from_dict reattaches it).
        timeline = getattr(stats, "timeline", None)
        if timeline is not None:
            entry["timeline"] = timeline.to_dict()
        self._data[key] = entry
        if self.shards is not None:
            self._dirty_shards.add(self.shard_of(key))

    def save(self) -> None:
        """Write the cache atomically: a crash mid-save cannot corrupt it.

        Sharded caches rewrite only the shards touched since the last
        save; each shard file is itself written atomically.
        """
        if self.path is None:
            return
        if self.shards is None:
            payload = {"version": RESULTS_VERSION, "results": self._data}
            atomic_write_text(self.path, json.dumps(payload))
            return
        for index in sorted(self._dirty_shards):
            entries = {
                key: entry for key, entry in self._data.items()
                if self.shard_of(key) == index
            }
            payload = {"version": RESULTS_VERSION, "results": entries}
            atomic_write_text(shard_path(self.path, index), json.dumps(payload))
        self._dirty_shards.clear()

    def __len__(self) -> int:
        return len(self._data)


def _simulate_for_pool(
    config: MachineConfig,
    workload: str,
    trace_ctx: TraceContext | tuple | None = None,
) -> tuple[dict, dict, list[dict]]:
    """Process-pool worker: one simulation, returned in serialized form.

    Runs in a child process, so it must not touch the parent's cache or
    bench log; the parent merges the returned ``(stats, profile, spans)``
    entries.  With a ``trace_ctx`` the worker wraps the simulation in
    ``pool.worker`` → ``machine.run`` spans parented to the caller's
    context and hands them back serialized for the parent's tracer to
    adopt — span context crosses the pool boundary the same way fault
    and fuzz workload identities do.
    """
    tracer = worker_span = run_span = None
    if trace_ctx is not None:
        tracer = Tracer()
        worker_span = tracer.start(
            "pool.worker", parent=TraceContext(*trace_ctx),
            attributes={"pid": os.getpid()},
        )
        run_span = tracer.start(
            "machine.run", parent=worker_span,
            attributes={"machine": config.name, "workload": workload},
        )
    started = time.perf_counter()
    stats = Machine(config).run(build(workload))
    wall = time.perf_counter() - started
    profile = RunProfile.measure(
        config.name, workload, wall, stats.cycles, stats.instructions
    )
    spans: list[dict] = []
    if tracer is not None:
        tracer.end(run_span, cycles=stats.cycles, instructions=stats.instructions)
        tracer.end(worker_span)
        spans = [span.to_dict() for span in tracer.spans()]
    stats_entry = stats.to_dict()
    timeline = getattr(stats, "timeline", None)
    if timeline is not None:
        # Ride the pool boundary inside the stats entry; the parent's
        # SimStats.from_dict reattaches it before cache.put re-embeds it.
        stats_entry["timeline"] = timeline.to_dict()
    return stats_entry, asdict(profile), spans


def _simulate_batch_for_pool(
    configs: list[MachineConfig],
    workload: str,
) -> list[tuple[dict, dict]]:
    """Process-pool worker: one batched simulation of many configs.

    The batch engine amortizes the workload's decode/probe/rename work
    across the whole group inside this worker; each config comes back as
    its own serialized ``(stats, profile)`` pair, timed as its slice of
    the batch, so the parent merges them exactly like solo results.
    """
    from repro.core.engine import run_soa_batch

    machines = [Machine(config) for config in configs]
    stats_list = run_soa_batch(machines, build(workload))
    entries: list[tuple[dict, dict]] = []
    for config, stats in zip(configs, stats_list):
        profile = RunProfile.measure(
            config.name, workload, stats.batch_seconds,
            stats.cycles, stats.instructions,
        )
        stats_entry = stats.to_dict()
        timeline = getattr(stats, "timeline", None)
        if timeline is not None:
            stats_entry["timeline"] = timeline.to_dict()
        entries.append((stats_entry, asdict(profile)))
    return entries


class SimulationRunner:
    """Runs (machine config, workload name) pairs through the cache.

    ``jobs`` sets the default process-pool width for
    :meth:`run_matrix`; ``None`` or ``1`` keeps everything in-process.
    The runner can be used as a context manager to guarantee a final
    :meth:`flush` even when individual :meth:`run` calls were used.
    """

    def __init__(
        self,
        cache_path: Path | str | None = None,
        bench_path: Path | str | None = None,
        jobs: int | None = None,
        shards: int | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if cache_path is None:
            cache_path = Path(__file__).resolve().parents[3] / ".repro_cache" / "results.json"
        self.metrics = MetricsRegistry()
        self.jobs = jobs
        #: optional request-scoped tracer: jobs carrying a trace context
        #: get cache.hit / machine.run / pool.worker spans recorded here.
        self.tracer = tracer
        self.cache = ResultCache(cache_path, metrics=self.metrics, shards=shards)
        if bench_path is None and self.cache.path is not None:
            parent = self.cache.path if shards is not None else self.cache.path.parent
            bench_path = parent / BENCH_FILENAME
        self.bench = BenchLog(bench_path)
        self._machines: dict[str, Machine] = {}
        self._dirty = False
        #: How the most recent :meth:`run_jobs` dispatched: policy
        #: (``serial``/``pool``), host width, and how much of the batch
        #: the lockstep engine coalesced — recorded so benchmarks can
        #: report the policy actually used instead of the one requested.
        self.last_dispatch: dict | None = None

    # -- persistence -----------------------------------------------------------

    def flush(self) -> None:
        """Persist the cache and bench log if anything changed since last save."""
        if not self._dirty:
            return
        self.bench.save(cache_metrics=self.metrics)
        self.cache.save()
        self._dirty = False

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "SimulationRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.flush()

    # -- running ----------------------------------------------------------------

    def run(
        self,
        config: MachineConfig,
        workload: str,
        trace_parent: TraceContext | None = None,
        row_sink=None,
    ) -> SimStats:
        """One simulation, served from cache when available.

        New results are kept in memory until :meth:`flush` (or the end of
        the enclosing :meth:`run_matrix`): saving the whole cache after
        every run made an N-run sweep O(N^2) in serialization work.

        With a ``trace_parent`` (and a runner :attr:`tracer`) the call is
        wrapped in a ``machine.run`` span — or a ``cache.hit`` span when
        no simulation happens — parented to the caller's context.
        """
        tracing = self.tracer is not None and trace_parent is not None
        cached = self.cache.get(config.name, workload)
        if cached is not None:
            log.debug("cache hit: %s on %s", config.name, workload)
            if tracing:
                span = self.tracer.start(
                    "cache.hit", parent=trace_parent,
                    attributes={"machine": config.name, "workload": workload},
                )
                self.tracer.end(span)
            return cached
        machine = self._machines.get(config.name)
        if machine is None:
            machine = Machine(config)
            self._machines[config.name] = machine
        log.info("simulating %s on %s ...", config.name, workload)
        run_span = None
        if tracing:
            run_span = self.tracer.start(
                "machine.run", parent=trace_parent,
                attributes={"machine": config.name, "workload": workload},
            )
        try:
            started = time.perf_counter()
            stats = machine.run(build(workload), timeline_sink=row_sink)
            wall = time.perf_counter() - started
        except BaseException as exc:
            if run_span is not None:
                self.tracer.end(run_span, error=repr(exc))
            raise
        if run_span is not None:
            self.tracer.end(
                run_span, cycles=stats.cycles, instructions=stats.instructions
            )
        profile = RunProfile.measure(
            config.name, workload, wall, stats.cycles, stats.instructions
        )
        log.info(
            "simulated %s on %s in %.2fs (%.0f instr/s, IPC %.3f)",
            config.name, workload, wall, profile.sim_instr_per_sec, stats.ipc,
        )
        self.bench.record(profile)
        self.cache.put(stats)
        self._dirty = True
        return stats

    def run_matrix(
        self,
        configs: list[MachineConfig],
        workloads: list[str],
        jobs: int | None = None,
        force_pool: bool = False,
    ) -> dict[tuple[str, str], SimStats]:
        """The full cross product, cached, flushed to disk once at the end.

        With ``jobs`` > 1 (argument, else the runner default), uncached
        pairs are simulated concurrently in a process pool; results and
        profiles are merged into the shared cache/bench log by the
        parent, so the on-disk artifacts are identical to a serial sweep
        (modulo wall-clock timings).  On hosts with too few cores for
        the pool to win, dispatch falls back to serial unless
        ``force_pool`` insists (see :meth:`run_jobs`).
        """
        sim_jobs = [
            SimJob(config, workload)
            for config in configs for workload in workloads
        ]
        return self.run_jobs(sim_jobs, jobs=jobs, force_pool=force_pool)

    def run_jobs(
        self,
        sim_jobs: Sequence[SimJob],
        jobs: int | None = None,
        timeout: float | None = None,
        cancel: threading.Event | None = None,
        force_pool: bool = False,
    ) -> dict[tuple[str, str], SimStats]:
        """Run a heterogeneous batch of :class:`SimJob`, cached and flushed.

        The batch-service entry point: unlike :meth:`run_matrix` the jobs
        need not form a cross product.  Duplicate keys are deduplicated.
        ``timeout`` bounds the *parallel* batch in wall-clock seconds —
        on expiry, futures that have not completed are cancelled and
        reported as a :class:`MatrixWorkerError` (in-process serial runs
        cannot be preempted, so the timeout is ignored there).
        ``cancel`` is checked between simulations/completions; once set,
        no new work starts, everything finished so far is flushed, and
        :class:`MatrixCancelled` is raised.

        A process pool only wins with cores to spread over: on a host
        with ``os.cpu_count() <= 2`` the workers time-slice against the
        parent and the fork/pickle overhead is pure loss (BENCH_perf
        measured 0.989x on a 1-cpu box), so the batch dispatches
        serially and logs that decision.  ``force_pool=True`` overrides
        the fallback — the serial-vs-parallel differential and the pool
        tests exercise the pool machinery regardless of host width.

        Orthogonally to pooling, jobs sharing one workload are grouped
        and driven through the batched SoA engine
        (:func:`~repro.core.engine.run_soa_batch`) — serially in-process,
        or as one pool task per group — so the shared decode/probe/rename
        work is paid once per workload instead of once per config.  The
        dispatch actually used is recorded on :attr:`last_dispatch`.
        """
        jobs = self.jobs if jobs is None else jobs
        cpus = os.cpu_count() or 1
        want_pool = jobs is not None and jobs > 1
        if want_pool and not force_pool:
            if cpus <= 2:
                log.info(
                    "run_jobs: %d-way pool requested on a %d-cpu host; "
                    "dispatching serially (pool overhead loses below 3 "
                    "cpus; pass force_pool=True to insist)",
                    jobs, cpus,
                )
                want_pool = False
        groups = self._batch_groups(sim_jobs)
        self.last_dispatch = {
            "policy": "pool" if want_pool else "serial",
            "requested_jobs": jobs,
            "cpus": cpus,
            "forced": bool(force_pool and want_pool),
            "batched_groups": len(groups),
            "batched_jobs": sum(len(g) for g in groups.values()),
        }
        if want_pool:
            results = self._run_jobs_parallel(
                sim_jobs, jobs, timeout, cancel, groups=groups,
            )
        else:
            results = self._run_jobs_serial(sim_jobs, cancel, groups)
        self.flush()
        return results

    def _batch_groups(
        self, sim_jobs: Sequence[SimJob]
    ) -> dict[str, list[SimJob]]:
        """Jobs that can share one batched simulation, keyed by workload.

        A job joins its workload's batch when the SoA engine is in
        effect, its config is :func:`~repro.core.engine.batchable`, and
        it carries no trace context (traced jobs keep their solo
        ``machine.run`` span structure).  Only groups of two or more
        remain — a singleton has nothing to share.  Duplicate keys keep
        their first occurrence, mirroring solo deduplication.
        """
        from repro.core.engine import batchable, resolve_engine

        if resolve_engine(None) != "soa":
            return {}
        groups: dict[str, list[SimJob]] = {}
        seen: set[tuple[str, str]] = set()
        for job in sim_jobs:
            if job.key in seen:
                continue
            seen.add(job.key)
            if job.trace is None and batchable(job.config):
                groups.setdefault(job.workload, []).append(job)
        return {
            workload: group
            for workload, group in groups.items() if len(group) >= 2
        }

    def _run_jobs_serial(
        self,
        sim_jobs: Sequence[SimJob],
        cancel: threading.Event | None,
        groups: dict[str, list[SimJob]],
    ) -> dict[tuple[str, str], SimStats]:
        """In-process dispatch: batched groups first, solo for the rest."""
        results: dict[tuple[str, str], SimStats] = {}
        batched_keys = {
            job.key for group in groups.values() for job in group
        }
        done = 0
        total = len({job.key for job in sim_jobs})

        def _check_cancel() -> None:
            if cancel is not None and cancel.is_set():
                self.flush()
                raise MatrixCancelled(
                    f"cancelled with {done}/{total} jobs done"
                )

        for workload, group in groups.items():
            _check_cancel()
            self._run_batch_group(workload, group, results)
            done += len(group)
        for job in sim_jobs:
            if job.key in results or job.key in batched_keys:
                continue
            _check_cancel()
            results[job.key] = self.run(
                job.config, job.workload, trace_parent=job.trace,
                row_sink=job.row_sink,
            )
            done += 1
        return results

    def _run_batch_group(
        self,
        workload: str,
        group: list[SimJob],
        results: dict[tuple[str, str], SimStats],
    ) -> None:
        """One workload's batchable jobs through ``run_soa_batch``.

        Cached members are served from the cache; if fewer than two
        misses remain the leftover runs solo (nothing left to share).
        Each batched result is recorded with its own
        :class:`RunProfile`, timed as the config's slice of the batch
        (``stats.batch_seconds``: its cycle loop plus an amortized share
        of the shared probe/plan construction).
        """
        from repro.core.engine import run_soa_batch

        uncached: list[SimJob] = []
        for job in group:
            cached = self.cache.get(job.config.name, job.workload)
            if cached is not None:
                log.debug("cache hit: %s on %s", job.config.name, workload)
                results[job.key] = cached
            else:
                uncached.append(job)
        if not uncached:
            return
        if len(uncached) == 1:
            job = uncached[0]
            results[job.key] = self.run(
                job.config, job.workload, row_sink=job.row_sink,
            )
            return
        log.info(
            "simulating %d configs on %s in one batch ...",
            len(uncached), workload,
        )
        machines = []
        for job in uncached:
            machine = self._machines.get(job.config.name)
            if machine is None:
                machine = Machine(job.config)
                self._machines[job.config.name] = machine
            machines.append(machine)
        stats_list = run_soa_batch(
            machines, build(workload),
            timeline_sinks=[job.row_sink for job in uncached],
        )
        for job, stats in zip(uncached, stats_list):
            profile = RunProfile.measure(
                job.config.name, workload, stats.batch_seconds,
                stats.cycles, stats.instructions,
            )
            log.info(
                "simulated %s on %s in %.2fs batched (%.0f instr/s, IPC %.3f)",
                job.config.name, workload, stats.batch_seconds,
                profile.sim_instr_per_sec, stats.ipc,
            )
            self.bench.record(profile)
            self.cache.put(stats)
            self._dirty = True
            results[job.key] = stats

    def _run_jobs_parallel(
        self,
        sim_jobs: Sequence[SimJob],
        jobs: int,
        timeout: float | None = None,
        cancel: threading.Event | None = None,
        groups: dict[str, list[SimJob]] | None = None,
    ) -> dict[tuple[str, str], SimStats]:
        """Fan uncached jobs out over a process pool and merge the results.

        Batchable groups (``groups``, from :meth:`_batch_groups`) are
        submitted as one worker task each — the batch engine amortizes
        the shared decode inside the worker while distinct workloads
        still spread across the pool; everything else rides the solo
        worker as before.
        """
        results: dict[tuple[str, str], SimStats] = {}
        pending: dict[tuple[str, str], SimJob] = {}
        handled: set[tuple[str, str]] = set()
        batch_tasks: list[tuple[str, list[SimJob]]] = []
        for workload, group in (groups or {}).items():
            uncached = []
            for job in group:
                cached = self.cache.get(job.config.name, job.workload)
                if cached is not None:
                    if self.tracer is not None and job.trace is not None:
                        self.tracer.end(self.tracer.start(
                            "cache.hit", parent=job.trace,
                            attributes={
                                "machine": job.config.name,
                                "workload": job.workload,
                            },
                        ))
                    results[job.key] = cached
                else:
                    uncached.append(job)
                handled.add(job.key)
            if len(uncached) >= 2:
                batch_tasks.append((workload, uncached))
            elif uncached:
                pending[uncached[0].key] = uncached[0]
        for job in sim_jobs:
            key = job.key
            if key in results or key in pending or key in handled:
                continue  # deduplicate in-flight keys
            cached = self.cache.get(job.config.name, job.workload)
            if cached is not None:
                if self.tracer is not None and job.trace is not None:
                    self.tracer.end(self.tracer.start(
                        "cache.hit", parent=job.trace,
                        attributes={"machine": job.config.name, "workload": job.workload},
                    ))
                results[key] = cached
            else:
                pending[key] = job
        task_count = len(pending) + len(batch_tasks)
        if not task_count:
            return results
        uncached_total = len(pending) + sum(
            len(group) for _, group in batch_tasks
        )
        log.info(
            "simulating %d uncached pairs (%d batched groups) across "
            "%d worker processes ...",
            uncached_total, len(batch_tasks), min(jobs, task_count),
        )
        started = time.perf_counter()
        # Futures drain in completion order, and every completed sibling's
        # result is merged and flushed even when a worker crashes: draining
        # in submission order used to let one bad pair raise out of
        # run_matrix before flush(), discarding the whole sweep's work.
        failures: list[tuple[tuple[str, str], BaseException]] = []
        cancelled = False
        try:
            with ProcessPoolExecutor(max_workers=min(jobs, task_count)) as pool:
                futures: dict = {}
                for workload, group in batch_tasks:
                    future = pool.submit(
                        _simulate_batch_for_pool,
                        [job.config for job in group], workload,
                    )
                    futures[future] = (
                        "batch", [job.key for job in group],
                    )
                for key, job in pending.items():
                    future = pool.submit(
                        _simulate_for_pool, job.config, key[1],
                        job.trace if self.tracer is not None else None,
                    )
                    futures[future] = ("solo", key)
                try:
                    for future in as_completed(futures, timeout=timeout):
                        tag, payload_key = futures[future]
                        if cancel is not None and cancel.is_set():
                            cancelled = True
                            break
                        try:
                            payload = future.result()
                        except Exception as exc:
                            first = (
                                payload_key[0] if tag == "batch"
                                else payload_key
                            )
                            log.error(
                                "worker failed on %s / %s: %r",
                                first[0], first[1], exc,
                            )
                            failures.append((first, exc))
                            continue
                        if tag == "batch":
                            for key, (stats_entry, profile_entry) in zip(
                                payload_key, payload
                            ):
                                stats = SimStats.from_dict(stats_entry)
                                self.bench.record(RunProfile(**profile_entry))
                                self.cache.put(stats)
                                self._dirty = True
                                results[key] = stats
                            continue
                        key = payload_key
                        stats_entry, profile_entry, span_entries = payload
                        if self.tracer is not None and span_entries:
                            self.tracer.adopt(span_entries)
                        stats = SimStats.from_dict(stats_entry)
                        self.bench.record(RunProfile(**profile_entry))
                        self.cache.put(stats)
                        self._dirty = True
                        results[key] = stats
                except FuturesTimeoutError:
                    for future, (tag, payload_key) in futures.items():
                        if not future.done():
                            future.cancel()
                            first = (
                                payload_key[0] if tag == "batch"
                                else payload_key
                            )
                            failures.append((
                                first,
                                TimeoutError(f"job exceeded the {timeout}s batch timeout"),
                            ))
                    log.error(
                        "batch timeout (%.1fs): %d tasks unfinished",
                        timeout, len(failures),
                    )
                    # A worker stuck mid-simulation would otherwise hang the
                    # pool's shutdown join indefinitely; terminate instead.
                    pool.shutdown(wait=False, cancel_futures=True)
                    for process in list(getattr(pool, "_processes", {}).values()):
                        process.terminate()
                if cancelled:
                    pool.shutdown(wait=False, cancel_futures=True)
        finally:
            self.flush()
        if cancelled:
            raise MatrixCancelled(
                f"cancelled with {len(results)}/{uncached_total} uncached jobs done"
            )
        if failures:
            (machine, workload), cause = failures[0]
            raise MatrixWorkerError(machine, workload, cause) from cause
        log.info(
            "parallel sweep of %d pairs finished in %.2fs",
            uncached_total, time.perf_counter() - started,
        )
        return results


_default_runner: SimulationRunner | None = None


def default_jobs() -> int | None:
    """Process-pool width for the shared runner: the ``REPRO_JOBS`` env var."""
    value = os.environ.get("REPRO_JOBS", "").strip()
    if not value:
        return None
    try:
        jobs = int(value)
    except ValueError:
        log.warning("ignoring non-integer REPRO_JOBS=%r", value)
        return None
    return jobs if jobs > 1 else None


def default_runner() -> SimulationRunner:
    """A process-wide shared runner (shared cache across experiments)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = SimulationRunner(jobs=default_jobs())
    return _default_runner
