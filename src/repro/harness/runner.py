"""Simulation runner with a persistent result cache and host profiling.

A full figure sweep is hundreds of (machine, workload) simulations;
several figures share the same runs (Figs. 9-12 share machines with the
§5.2 study, Fig. 14 reuses the Ideal results).  The runner memoizes
results in memory and, optionally, in a JSON file keyed by machine name,
workload name, and a schema version, so re-running a benchmark after the
first sweep is cheap.  Bump ``RESULTS_VERSION`` whenever the timing model
changes in a way that invalidates old numbers.

Serialization is :meth:`SimStats.to_dict` / :meth:`SimStats.from_dict`
(scalar fields by dataclass introspection plus the generic metrics
registry), so new counters persist without touching this module.

Every uncached simulation is also timed on the host and appended to
``BENCH_obs.json`` (see :mod:`repro.obs.profile`), giving performance
work a measured trajectory; cache hits/misses/invalidations are counted
in the runner's metrics registry.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.config import MachineConfig
from repro.core.machine import Machine
from repro.core.statistics import SimStats
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import BENCH_FILENAME, BenchLog, RunProfile
from repro.workloads.suite import build

log = get_logger(__name__)

RESULTS_VERSION = 6


class ResultCache:
    """JSON-backed cache of simulation statistics."""

    def __init__(
        self, path: Path | str | None, metrics: MetricsRegistry | None = None
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter("cache.hits")
        self._misses = self.metrics.counter("cache.misses")
        self._invalidations = self.metrics.counter("cache.invalidations")
        self._data: dict[str, dict] = {}
        if self.path is not None and self.path.exists():
            try:
                loaded = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                log.warning(
                    "result cache %s is unreadable (%s); starting with an empty cache",
                    self.path, exc,
                )
                self._invalidations.inc()
                loaded = {}
            if loaded.get("version") == RESULTS_VERSION:
                self._data = loaded.get("results", {})
            elif loaded:
                log.warning(
                    "result cache %s has version %r, expected %r; discarding %d entries",
                    self.path, loaded.get("version"), RESULTS_VERSION,
                    len(loaded.get("results", {})),
                )
                self._invalidations.inc()

    @staticmethod
    def key(machine: str, workload: str) -> str:
        return f"{machine}::{workload}"

    def get(self, machine: str, workload: str) -> SimStats | None:
        entry = self._data.get(self.key(machine, workload))
        if entry is None:
            self._misses.inc()
            return None
        self._hits.inc()
        return SimStats.from_dict(entry)

    def put(self, stats: SimStats) -> None:
        self._data[self.key(stats.machine, stats.workload)] = stats.to_dict()

    def save(self) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": RESULTS_VERSION, "results": self._data}
        self.path.write_text(json.dumps(payload))

    def __len__(self) -> int:
        return len(self._data)


class SimulationRunner:
    """Runs (machine config, workload name) pairs through the cache."""

    def __init__(
        self,
        cache_path: Path | str | None = None,
        bench_path: Path | str | None = None,
    ) -> None:
        if cache_path is None:
            cache_path = Path(__file__).resolve().parents[3] / ".repro_cache" / "results.json"
        self.metrics = MetricsRegistry()
        self.cache = ResultCache(cache_path, metrics=self.metrics)
        if bench_path is None and self.cache.path is not None:
            bench_path = self.cache.path.parent / BENCH_FILENAME
        self.bench = BenchLog(bench_path)
        self._machines: dict[str, Machine] = {}

    def run(self, config: MachineConfig, workload: str) -> SimStats:
        """One simulation, served from cache when available."""
        cached = self.cache.get(config.name, workload)
        if cached is not None:
            log.debug("cache hit: %s on %s", config.name, workload)
            return cached
        machine = self._machines.get(config.name)
        if machine is None:
            machine = Machine(config)
            self._machines[config.name] = machine
        log.info("simulating %s on %s ...", config.name, workload)
        started = time.perf_counter()
        stats = machine.run(build(workload))
        wall = time.perf_counter() - started
        profile = RunProfile.measure(
            config.name, workload, wall, stats.cycles, stats.instructions
        )
        log.info(
            "simulated %s on %s in %.2fs (%.0f instr/s, IPC %.3f)",
            config.name, workload, wall, profile.sim_instr_per_sec, stats.ipc,
        )
        self.bench.record(profile)
        self.bench.save(cache_metrics=self.metrics)
        self.cache.put(stats)
        self.cache.save()
        return stats

    def run_matrix(
        self, configs: list[MachineConfig], workloads: list[str]
    ) -> dict[tuple[str, str], SimStats]:
        """The full cross product, cached."""
        return {
            (config.name, workload): self.run(config, workload)
            for config in configs
            for workload in workloads
        }


_default_runner: SimulationRunner | None = None


def default_runner() -> SimulationRunner:
    """A process-wide shared runner (shared cache across experiments)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = SimulationRunner()
    return _default_runner
