"""Render experiments and write EXPERIMENTS.md.

``python -m repro.harness.report`` regenerates every artifact and writes
the paper-vs-measured record the deliverables require.  Individual
experiments are also printed by their benchmark files.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.harness.experiments import ExperimentResult, all_experiments
from repro.harness.runner import default_runner
from repro.obs.log import get_logger
from repro.utils.tables import format_bar_chart

log = get_logger(__name__)

_HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction of Brown & Patt, *Using Internal Redundant Representations
and Limited Bypass to Support Pipelined Adders and Register Files*
(HPCA 2002).  Regenerate with `python -m repro.harness.report` or the
per-figure benchmarks under `benchmarks/`.

Absolute IPCs are not expected to match the paper (our workloads are
SPEC-like kernels on a from-scratch simulator — see DESIGN.md §2); the
reproduction targets are the paper's *shape* claims, checked below and
asserted by `benchmarks/`:

* machine ordering Baseline < RB-limited <= RB-full <= Ideal on suite means;
* the Ideal-over-Baseline gap grows with execution width (8-wide > 4-wide);
* RB-full tracks Ideal far more closely than Baseline does;
* removing the first bypass level hurts most; keeping level 1 keeps IPC
  within a few percent of full bypass (Fig. 14);
* RB -> TC format conversions are a small fraction of critical bypasses
  (Fig. 13), because most last-arriving operands are loads;
* RB adder delay is width-independent and ~2-3x faster than a 64-bit CLA,
  with the RB->TC converter costing about a CLA (§3.4).

"""


def write_experiments_md(
    path: Path | str | None = None, jobs: int | None = None
) -> Path:
    """Run everything and write EXPERIMENTS.md; returns the path written.

    ``jobs`` overrides the runner's process-pool width for this sweep
    (``None`` keeps the runner default, i.e. ``REPRO_JOBS`` or serial).
    """
    if path is None:
        path = Path(__file__).resolve().parents[3] / "EXPERIMENTS.md"
    path = Path(path)
    runner = default_runner()
    if jobs is not None:
        runner.jobs = jobs if jobs > 1 else None
    sections = []
    for result in all_experiments(runner):
        log.info("rendered %s (%s)", result.experiment, result.title)
        sections.append(_render(result))
    body = _HEADER + "\n\n".join(sections) + "\n"
    path.write_text(body)
    return path


def _render(result: ExperimentResult) -> str:
    lines = [f"## {result.title}", "", "```", result.text(), "```", ""]
    chart = _bar_chart_for(result)
    if chart:
        lines += ["", "```", chart, "```", ""]
    return "\n".join(lines)


def _bar_chart_for(result: ExperimentResult) -> str | None:
    """ASCII bars for the IPC figures (the paper's figures are bar charts)."""
    if result.experiment.startswith("fig") and "ipc" in result.series:
        machines = result.series["machines"]
        ipc = result.series["ipc"]
        labels = [row[0] for row in result.rows if row[0] != "MEAN"]
        return format_bar_chart(labels, {m: ipc[m] for m in machines}, width=36)
    if result.experiment == "fig14":
        labels = list(result.series)
        series = {
            f"{width}-wide": [result.series[label][width] for label in labels]
            for width in (4, 8)
        }
        return format_bar_chart(labels, series, width=36)
    return None


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    started = time.time()
    target = Path(argv[0]) if argv else None
    path = write_experiments_md(target)
    print(f"wrote {path} in {time.time() - started:.0f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
