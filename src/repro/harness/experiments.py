"""One entry point per paper artifact.

Every function returns an :class:`ExperimentResult` whose ``rows`` are the
regenerated numbers and whose ``series`` carry the same data for
programmatic assertions (the benchmark suite checks the paper's *shape*
claims against them: orderings, approximate ratios, crossovers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.latency import TABLE3
from repro.circuits.analysis import adder_delay_table
from repro.core.config import MachineConfig
from repro.core.presets import (
    FIG14_VARIANTS,
    all_paper_machines,
    baseline,
    ideal,
    ideal_limited,
    rb_full,
    rb_limited,
)
from repro.core.statistics import BypassCase, BypassLevelUse
from repro.obs.explain import StallCause
from repro.harness.runner import SimulationRunner, default_runner
from repro.isa.classify import TABLE1_ROWS, classify
from repro.isa.opcodes import LatencyClass, Opcode
from repro.isa.semantics import ArchState
from repro.utils.stats import Distribution, harmonic_mean, mean
from repro.utils.tables import format_table
from repro.workloads.suite import all_workloads, build


@dataclass
class ExperimentResult:
    """A regenerated table/figure plus machine-readable series."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    series: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def text(self) -> str:
        out = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out


# ---------------------------------------------------------------------------
# Figures 9-12: IPC of the four machines per suite and width
# ---------------------------------------------------------------------------

_FIGURE_NUMBERS = {(8, "spec2000"): 9, (8, "spec95"): 10, (4, "spec2000"): 11, (4, "spec95"): 12}


def fig_ipc(
    width: int, suite: str, runner: SimulationRunner | None = None
) -> ExperimentResult:
    """Figures 9-12: per-benchmark IPC for Baseline/RB-limited/RB-full/Ideal."""
    runner = runner or default_runner()
    machines = all_paper_machines(width)
    workloads = [w.name for w in all_workloads(suite)]
    # Warm the whole matrix first: with a parallel runner this fans the
    # uncached pairs out across worker processes; the per-pair reads
    # below are then all in-memory cache hits.
    runner.run_matrix(machines, workloads)
    series: dict[str, list[float]] = {m.name: [] for m in machines}
    rows: list[list[object]] = []
    for workload in workloads:
        row: list[object] = [workload]
        for machine in machines:
            ipc = runner.run(machine, workload).ipc
            series[machine.name].append(ipc)
            row.append(ipc)
        rows.append(row)
    means = [mean(series[m.name]) for m in machines]
    rows.append(["MEAN"] + means)
    figure = _FIGURE_NUMBERS[(width, suite)]
    return ExperimentResult(
        experiment=f"fig{figure}",
        title=f"Figure {figure}: IPC, {width}-wide machines, {suite}",
        headers=["benchmark"] + [m.name for m in machines],
        rows=rows,
        series={"machines": [m.name for m in machines], "ipc": series,
                "means": dict(zip((m.name for m in machines), means))},
    )


# ---------------------------------------------------------------------------
# Figure 13: potentially critical bypass cases on the 8-wide RB-full machine
# ---------------------------------------------------------------------------

def fig13_bypass_cases(runner: SimulationRunner | None = None) -> ExperimentResult:
    """Figure 13: distribution of last-arriving bypass cases (RB-full, 8-wide)."""
    runner = runner or default_runner()
    machine = rb_full(8)
    runner.run_matrix([machine], [w.name for w in all_workloads("spec2000")])
    rows: list[list[object]] = []
    series: dict[str, dict[str, float]] = {}
    for workload in all_workloads("spec2000"):
        stats = runner.run(machine, workload.name)
        cases = stats.bypass_cases
        per = {case.name: cases.fraction(case) for case in BypassCase}
        per["bypassed_fraction"] = stats.bypassed_instruction_fraction()
        series[workload.name] = per
        rows.append([
            workload.name,
            stats.bypassed_instruction_fraction(),
            cases.fraction(BypassCase.TC_TO_TC),
            cases.fraction(BypassCase.TC_TO_RB),
            cases.fraction(BypassCase.RB_TO_RB),
            cases.fraction(BypassCase.RB_TO_TC),
        ])
    return ExperimentResult(
        experiment="fig13",
        title="Figure 13: last-arriving bypass cases, 8-wide RB-full, spec2000",
        headers=["benchmark", "frac w/ bypass", "TC->TC", "TC->RB", "RB->RB",
                 "RB->TC (conversion)"],
        rows=rows,
        series=series,
        notes=["the paper reports RB->TC conversions are a small fraction of "
               "bypasses because most last-arriving sources are loads (TC)"],
    )


# ---------------------------------------------------------------------------
# Figure 14: limited bypass networks on the Ideal machine
# ---------------------------------------------------------------------------

def fig14_limited_bypass(runner: SimulationRunner | None = None) -> ExperimentResult:
    """Figure 14: harmonic-mean IPC over all 20 benchmarks, limited bypass."""
    runner = runner or default_runner()
    workloads = [w.name for w in all_workloads()]
    variants: list[tuple[str, dict[int, MachineConfig]]] = [
        ("full", {w: ideal(w) for w in (4, 8)})
    ]
    for removed in FIG14_VARIANTS:
        label = "No-" + ",".join(str(level) for level in sorted(removed))
        variants.append((label, {w: ideal_limited(w, removed) for w in (4, 8)}))

    runner.run_matrix(
        [config for _, configs in variants for config in configs.values()],
        workloads,
    )
    rows: list[list[object]] = []
    series: dict[str, dict[int, float]] = {}
    for label, configs in variants:
        hmeans = {}
        for width, config in configs.items():
            ipcs = [runner.run(config, workload).ipc for workload in workloads]
            hmeans[width] = harmonic_mean(ipcs)
        series[label] = hmeans
        rows.append([label, hmeans[4], hmeans[8]])
    return ExperimentResult(
        experiment="fig14",
        title="Figure 14: harmonic-mean IPC with limited bypass (all 20 benchmarks)",
        headers=["bypass network", "4-wide", "8-wide"],
        rows=rows,
        series=series,
        notes=["paper: configurations keeping the first level perform best; "
               "the 4-wide No-1,2 machine outperforms the clustered 8-wide one"],
    )


# ---------------------------------------------------------------------------
# Table 1: dynamic instruction mix by format class
# ---------------------------------------------------------------------------

_MIX_EXCLUDED = {Opcode.BR, Opcode.JSR, Opcode.RET, Opcode.JMP, Opcode.NOP, Opcode.HALT}


def dynamic_mix(workload: str, max_instructions: int = 400_000) -> Distribution:
    """Classify every dynamic instruction of one workload (Table 1 rows)."""
    program = build(workload)
    state = ArchState(program)
    mix = Distribution()
    while not state.halted:
        instr = program.at(state.pc)
        state.execute(instr)
        if instr.opcode not in _MIX_EXCLUDED:
            mix.record(classify(instr))
        if state.instructions_executed > max_instructions:
            raise RuntimeError(f"workload {workload} ran away during mix collection")
    return mix


def table1_mix() -> ExperimentResult:
    """Table 1: fraction of the dynamic stream per format class, vs the paper."""
    total = Distribution()
    for workload in all_workloads():
        total.merge(dynamic_mix(workload.name))
    rows: list[list[object]] = []
    series: dict[str, dict[str, float]] = {"ours": {}, "paper": {}}
    for format_class, paper_fraction in TABLE1_ROWS:
        ours = total.fraction(format_class)
        series["ours"][format_class.name] = ours
        series["paper"][format_class.name] = paper_fraction
        rows.append([format_class.value, ours, paper_fraction])
    rb_output = sum(
        series["ours"][fc.name] for fc, _ in TABLE1_ROWS if fc.name.endswith("RB_RB")
    )
    rows.append(["total RB-output classes", rb_output, 0.33])
    return ExperimentResult(
        experiment="table1",
        title="Table 1: dynamic instruction mix by format class (all 20 kernels)",
        headers=["class", "measured", "paper"],
        rows=rows,
        series=series,
        notes=["our kernels are arithmetic-heavier and load-lighter than SPEC "
               "(documented in EXPERIMENTS.md); class coverage and ordering match"],
    )


# ---------------------------------------------------------------------------
# Table 3: the latency model itself
# ---------------------------------------------------------------------------

def table3_latencies() -> ExperimentResult:
    """Table 3: per-class latencies as configured (definitionally the paper's)."""
    rows: list[list[object]] = []
    series: dict[str, tuple[int, int, int, int]] = {}
    for latency_class, row in TABLE3.items():
        rb = f"{row.rb} ({row.rb_tc})" if row.rb_tc != row.rb else str(row.rb)
        rows.append([latency_class.value, row.baseline, rb, row.ideal])
        series[latency_class.name] = (row.baseline, row.rb, row.rb_tc, row.ideal)
    return ExperimentResult(
        experiment="table3",
        title="Table 3: instruction class latencies (Base / RB (TC result) / Ideal)",
        headers=["class", "Base", "RB (TC)", "Ideal"],
        rows=rows,
        series=series,
        notes=["loads add the 2-cycle pipelined D-cache on top of the 1-cycle "
               "SAM address generation; COUNT and BRANCH rows are modelling "
               "decisions documented in backend/latency.py"],
    )


# ---------------------------------------------------------------------------
# §3.4: adder delay comparison
# ---------------------------------------------------------------------------

def sec34_adder_delays(widths: tuple[int, ...] = (8, 16, 32, 64)) -> ExperimentResult:
    """§3.4: gate-level critical-path delays of the adder families."""
    table = adder_delay_table(widths=widths)
    rows: list[list[object]] = []
    for family, delays in table.items():
        rows.append([family] + [delays[w] for w in widths])
    rb64 = table["rb"][64] if 64 in widths else table["rb"][max(widths)]
    top = max(widths)
    ratios = {
        family: table[family][top] / table["rb"][top]
        for family in table if family != "rb"
    }
    return ExperimentResult(
        experiment="sec34",
        title="Section 3.4: adder critical-path delays (normalized inverter units)",
        headers=["adder"] + [f"{w}-bit" for w in widths],
        rows=rows,
        series={"delays": table, "ratios_vs_rb": ratios, "rb_delay": rb64},
        notes=[f"speedup of the RB adder at {top} bits: " +
               ", ".join(f"{k} {v:.2f}x" for k, v in sorted(ratios.items())),
               "paper (SPICE, 0.5um): RB ~3x faster than a 64-bit CLA, "
               "~2.7x faster than the RB->TC converter"],
    )


# ---------------------------------------------------------------------------
# §5.2: bypass level usage on the Ideal machines
# ---------------------------------------------------------------------------

def sec52_bypass_levels(runner: SimulationRunner | None = None) -> ExperimentResult:
    """§5.2: per-benchmark source-delivery buckets on the Ideal machines."""
    runner = runner or default_runner()
    runner.run_matrix(
        [ideal(width) for width in (4, 8)], [w.name for w in all_workloads()]
    )
    rows: list[list[object]] = []
    series: dict[str, dict[str, tuple[float, float]]] = {}
    for width in (4, 8):
        config = ideal(width)
        fractions = {use: [] for use in BypassLevelUse}
        for workload in all_workloads():
            stats = runner.run(config, workload.name)
            for use in BypassLevelUse:
                fractions[use].append(stats.bypass_levels.fraction(use))
        ranges = {
            use.name: (min(values), max(values))
            for use, values in fractions.items()
        }
        series[f"{width}w"] = ranges
        for use in BypassLevelUse:
            low, high = ranges[use.name]
            rows.append([f"{width}-wide", use.value, low, high])
    return ExperimentResult(
        experiment="sec52",
        title="Section 5.2: bypass-level usage ranges on the Ideal machine",
        headers=["machine", "bucket", "min", "max"],
        rows=rows,
        series=series,
        notes=["paper: 21-38% no bypassed source, 51-70% first level, "
               "5-14% another bypass path"],
    )


# ---------------------------------------------------------------------------
# CPI stacks: where each machine model's cycles go (repro.obs.explain)
# ---------------------------------------------------------------------------

def cpi_stack_experiment(
    runner: SimulationRunner | None = None, width: int = 4, suite: str = "spec95"
) -> ExperimentResult:
    """Suite-aggregate CPI stacks for the four paper machines.

    Per-cause cycles are summed over the suite's workloads, then divided
    by total instructions: an instruction-weighted suite-mean CPI stack
    whose components sum exactly to the suite's aggregate CPI.
    """
    runner = runner or default_runner()
    machines = all_paper_machines(width)
    workloads = [w.name for w in all_workloads(suite)]
    runner.run_matrix(machines, workloads)
    rows: list[list[object]] = []
    series: dict[str, dict[str, float]] = {}
    totals: dict[str, dict[StallCause, int]] = {}
    counts: dict[str, dict[str, int]] = {}
    for machine in machines:
        per_cause = {cause: 0 for cause in StallCause}
        cycles = 0
        instructions = 0
        for workload in workloads:
            stats = runner.run(machine, workload)
            stack = stats.cpi_stack()
            stack.validate()
            for cause in StallCause:
                per_cause[cause] += stack.cycles_for(cause)
            cycles += stack.cycles
            instructions += stack.instructions
        totals[machine.name] = per_cause
        counts[machine.name] = {"cycles": cycles, "instructions": instructions}
        series[machine.name] = {
            cause.value: (per_cause[cause] / instructions if instructions else 0.0)
            for cause in StallCause
        }
        series[machine.name]["total_cpi"] = cycles / instructions if instructions else 0.0
    for cause in StallCause:
        if all(totals[m.name][cause] == 0 for m in machines) \
                and cause is not StallCause.BASE:
            continue
        rows.append([cause.value] + [series[m.name][cause.value] for m in machines])
    rows.append(["total CPI"] + [series[m.name]["total_cpi"] for m in machines])
    return ExperimentResult(
        experiment="cpi",
        title=f"CPI stacks by machine model ({width}-wide, {suite} suite mean)",
        headers=["component (cycles/instr)"] + [m.name for m in machines],
        rows=rows,
        series=series,
        notes=["per-cycle stall attribution (repro.obs.explain); components sum "
               "exactly to total CPI per (machine, workload) pair",
               "the RB machines' bypass-hole component is the Fig. 8 cost of "
               "deleted levels; Ideal has no holes and no conversions"],
    )


# ---------------------------------------------------------------------------
# Interval timelines: phase-segmented time-series across two adders
# ---------------------------------------------------------------------------

def timeline_experiment(
    runner: SimulationRunner | None = None,
    workload: str = "ijpeg",
    width: int = 4,
) -> ExperimentResult:
    """Phase-segmented interval timelines of one workload on two adders.

    Baseline (conventional two-stage adder) vs RB-limited (pipelined
    redundant-binary adder with the limited bypass network) on the same
    kernel, aligned by retired-instruction count: per detected execution
    phase, where the RB machine's cycle savings actually come from — and
    in which phases the conversion/bypass-hole costs eat them back
    (``cycle_ratio`` above 1.0).
    """
    from repro.obs.timeline import timeline_diff

    runner = runner or default_runner()
    a_config = baseline(width)
    b_config = rb_limited(width)
    runner.run_matrix([a_config, b_config], [workload])
    a = runner.run(a_config, workload)
    b = runner.run(b_config, workload)
    diff = timeline_diff(a.timeline, b.timeline)
    rows: list[list[object]] = []
    for phase in diff.phases:
        rows.append([
            f"rows {phase['start_row']}-{phase['end_row']}",
            phase["instructions"],
            phase["dominant_stall"] or "-",
            phase["a_ipc"],
            phase["b_ipc"],
            phase["cycle_ratio"],
        ])
    summary = diff.summary
    rows.append([
        "TOTAL", diff.aligned_instructions, "-",
        round(a.timeline.ipc, 4), round(b.timeline.ipc, 4),
        summary["cycle_ratio"],
    ])
    return ExperimentResult(
        experiment="timeline",
        title=(
            f"Interval timelines: {a_config.name} (A) vs {b_config.name} (B) "
            f"on {workload}, aligned by retired instructions"
        ),
        headers=["phase", "instr", "dominant stall (A)",
                 "IPC A", "IPC B", "B/A cycles"],
        rows=rows,
        series={
            "workload": workload,
            "a_machine": a_config.name,
            "b_machine": b_config.name,
            "phases": diff.phases,
            "summary": summary,
        },
        notes=[
            "phases are change-points in A's per-interval IPC series "
            "(repro.obs.timeline.segment_phases); B's cost per phase comes "
            "from aligning both runs on the retired-instruction axis",
            "regenerate interactively with `repro timeline "
            f"{workload} --machine baseline --diff rb-limited`",
        ],
    )


# ---------------------------------------------------------------------------
# Headline ratios (abstract and §5.2 prose)
# ---------------------------------------------------------------------------

def headline_ratios(runner: SimulationRunner | None = None) -> ExperimentResult:
    """The abstract's claims: Ideal vs Baseline, RB-full vs Ideal, limited vs full."""
    runner = runner or default_runner()
    rows: list[list[object]] = []
    series: dict[str, dict[str, float]] = {}
    paper = {
        (8, "spec2000"): {"ideal_over_base": 1.08, "rbfull_vs_ideal": 0.989,
                          "rblim_vs_rbfull": 0.98},
        (8, "spec95"): {"ideal_over_base": 1.11, "rbfull_vs_ideal": 0.98,
                        "rblim_vs_rbfull": 0.98},
        (4, "spec2000"): {"ideal_over_base": 1.055, "rbfull_vs_ideal": 0.995,
                          "rblim_vs_rbfull": 0.977},
        (4, "spec95"): {"ideal_over_base": 1.073, "rbfull_vs_ideal": 0.987,
                        "rblim_vs_rbfull": 0.977},
    }
    for width in (8, 4):
        for suite in ("spec2000", "spec95"):
            result = fig_ipc(width, suite, runner)
            means = result.series["means"]
            base = means[f"Baseline-{width}w"]
            limited = means[f"RB-limited-{width}w"]
            full = means[f"RB-full-{width}w"]
            ideal_ipc = means[f"Ideal-{width}w"]
            measured = {
                "ideal_over_base": ideal_ipc / base,
                "rbfull_over_base": full / base,
                "rbfull_vs_ideal": full / ideal_ipc,
                "rblim_vs_rbfull": limited / full,
            }
            series[f"{width}w/{suite}"] = measured
            expected = paper[(width, suite)]
            rows.append([
                f"{width}w {suite}",
                measured["ideal_over_base"], expected["ideal_over_base"],
                measured["rbfull_vs_ideal"], expected["rbfull_vs_ideal"],
                measured["rblim_vs_rbfull"], expected["rblim_vs_rbfull"],
            ])
    return ExperimentResult(
        experiment="headline",
        title="Headline ratios: measured vs paper (means over each suite)",
        headers=["config", "Ideal/Base", "paper", "RBfull/Ideal", "paper",
                 "RBlim/RBfull", "paper"],
        rows=rows,
        series=series,
    )


# ---------------------------------------------------------------------------
# Beyond the paper: the adder design-space Pareto frontier
# ---------------------------------------------------------------------------

def pareto_frontier(points: list[dict]) -> list[dict]:
    """The non-dominated subset of sweep points.

    A point is dominated if some other point clocks no slower *and*
    retires no fewer instructions per cycle, strictly better in at least
    one.  Returned sorted fastest-clock-first.
    """
    frontier = [
        p for p in points
        if not any(
            (q["cycle_time"] <= p["cycle_time"] and q["ipc_hmean"] >= p["ipc_hmean"])
            and (q["cycle_time"] < p["cycle_time"] or q["ipc_hmean"] > p["ipc_hmean"])
            for q in points
        )
    ]
    return sorted(frontier, key=lambda p: (p["cycle_time"], -p["ipc_hmean"]))


def pareto_experiment(
    runner: SimulationRunner | None = None,
    widths: tuple[int, ...] = (4, 8),
    workloads: tuple[str, ...] = ("compress", "ijpeg", "li"),
    families: tuple[str, ...] | None = None,
    data_width: int = 64,
    verify_width: int | None = None,
    jobs: int | None = None,
) -> ExperimentResult:
    """Beyond Fig. 9: the adder-choice × machine × workload Pareto sweep.

    Every adder family is first put through the formal equivalence gate
    (:func:`repro.circuits.verify.assert_verified`) at ``verify_width``
    (default: ``data_width``) — no unproven netlist reaches the timing
    model.  Each proven design then becomes a machine preset
    (:func:`repro.core.presets.adder_machine`: netlist delay -> adder
    pipeline depth + clock period) and the whole grid runs through the
    batched simulation machinery.  Per (family, width) point the result
    carries the netlist delay, the clock, the harmonic-mean IPC, and
    normalized performance ``ipc_hmean / cycle_time``; the frontier is
    the non-dominated set in (cycle_time, IPC).
    """
    from repro.circuits.verify import assert_verified
    from repro.core.presets import (
        PARETO_ADDER_FAMILIES,
        adder_designs,
        adder_machine,
    )

    runner = runner or default_runner()
    if families is None:
        families = PARETO_ADDER_FAMILIES
    if len(workloads) == 0:
        raise ValueError("pareto sweep needs at least one workload")

    # The formal gate.  RB machines also lean on the format converter, so
    # it is proven alongside whenever the RB family is swept.
    gate_names = list(families)
    if "rb" in gate_names and "rb_to_tc_converter" not in gate_names:
        gate_names.append("rb_to_tc_converter")
    verified = assert_verified(
        verify_width if verify_width is not None else data_width,
        names=gate_names,
    )

    designs = adder_designs(data_width, tuple(families))
    grid = [
        (family, width, adder_machine(design, width))
        for family, design in designs.items()
        for width in widths
    ]
    runner.run_matrix([config for _, _, config in grid], list(workloads), jobs=jobs)

    rows: list[list[object]] = []
    points: list[dict] = []
    for family, width, config in grid:
        design = designs[family]
        ipcs = {w: runner.run(config, w).ipc for w in workloads}
        ipc_hmean = harmonic_mean(list(ipcs.values()))
        point = {
            "machine": config.name,
            "family": family,
            "width": width,
            "data_width": design.data_width,
            "delay": design.delay,
            "adder_cycles": design.cycles,
            "cycle_time": design.cycle_time,
            "ipc": ipcs,
            "ipc_hmean": ipc_hmean,
            "performance": ipc_hmean / design.cycle_time,
        }
        points.append(point)
        rows.append([
            config.name, design.delay, design.cycles, design.cycle_time,
            ipc_hmean, point["performance"],
        ])
    frontier = pareto_frontier(points)
    frontier_names = [p["machine"] for p in frontier]
    for point in points:
        point["frontier"] = point["machine"] in frontier_names
    for row in rows:
        row.append("*" if row[0] in frontier_names else "")
    return ExperimentResult(
        experiment="pareto",
        title="Adder design space: delay x IPC Pareto sweep (proven netlists)",
        headers=["machine", "delay (inv)", "adder cycles", "cycle time (inv)",
                 "hmean IPC", "perf (IPC/inv)", "frontier"],
        rows=rows,
        series={
            "workloads": list(workloads),
            "widths": list(widths),
            "points": points,
            "frontier": frontier_names,
            "verified": {
                name: result.as_dict() for name, result in verified.items()
            },
        },
        notes=[
            "performance = hmean IPC / cycle time, in retired instructions "
            "per normalized inverter delay",
            "every swept netlist passed BDD equivalence against its "
            "arithmetic spec before simulation",
        ],
    )


def all_experiments(runner: SimulationRunner | None = None) -> list[ExperimentResult]:
    """Every paper artifact, in presentation order."""
    runner = runner or default_runner()
    return [
        table1_mix(),
        table3_latencies(),
        sec34_adder_delays(),
        fig_ipc(8, "spec2000", runner),
        fig_ipc(8, "spec95", runner),
        fig_ipc(4, "spec2000", runner),
        fig_ipc(4, "spec95", runner),
        fig13_bypass_cases(runner),
        fig14_limited_bypass(runner),
        sec52_bypass_levels(runner),
        cpi_stack_experiment(runner),
        timeline_experiment(runner),
        headline_ratios(runner),
    ]
