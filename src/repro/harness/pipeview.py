"""Pipeline diagrams from execution traces — the paper's Figures 5 and 7.

Given a machine run with ``record_trace=True``, renders per-instruction
stage occupancy over cycles, in the style the paper uses to explain the
limited bypass network:

.. code-block:: text

    Cycle:            0    1    2    3    4    5
    sll r1, #2, r2    SCH  RF   RF   EXE  CV   CV
    add r2, r3, r4    .    SCH  RF   RF   EXE  CV

Stages: ``SCH`` the select cycle, ``RF`` register read, ``EXE`` execution,
``CV`` format conversion (RB producers only), ``WB`` write-back.  Fetch
and rename are omitted by default (they are long and uniform); pass
``include_frontend=True`` for the full pipeline.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.machine import SELECT_TO_EXEC
from repro.core.window import DynInstr


def instruction_stages(rec: DynInstr) -> dict[int, str]:
    """Map absolute cycle -> stage label for one traced instruction."""
    if rec.select_cycle is None:
        return {}
    stages: dict[int, str] = {rec.select_cycle: "SCH"}
    for i in range(1, SELECT_TO_EXEC):
        stages[rec.select_cycle + i] = "RF"
    exec_start = rec.select_cycle + SELECT_TO_EXEC
    exec_cycles = max(1, rec.lat_rb)
    for i in range(exec_cycles):
        stages[exec_start + i] = "EXE"
    for i in range(rec.lat_tc - rec.lat_rb):
        stages[exec_start + exec_cycles + i] = "CV"
    if rec.complete_cycle is not None:
        stages[rec.complete_cycle + 1] = "WB"
    return stages


def pipeline_diagram(
    trace: Sequence[DynInstr],
    first: int = 0,
    count: int = 16,
    include_frontend: bool = False,
    max_cycles: int = 40,
) -> str:
    """Render ``count`` traced instructions starting at index ``first``."""
    window = [rec for rec in trace[first:first + count] if rec.select_cycle is not None]
    if not window:
        raise ValueError("no selected instructions in the requested window")

    all_stages = []
    for rec in window:
        stages = instruction_stages(rec)
        if include_frontend:
            stages.setdefault(rec.fetch_cycle, "F")
            if rec.rename_cycle >= 0:
                stages.setdefault(rec.rename_cycle, "REN")
        all_stages.append(stages)

    start = min(min(stages) for stages in all_stages)
    end = max(max(stages) for stages in all_stages)
    if end - start + 1 > max_cycles:
        end = start + max_cycles - 1

    label_width = max(len(rec.instr.text) for rec in window) + 2
    cell = 5
    header = "Cycle:".ljust(label_width) + "".join(
        str(cycle - start).ljust(cell) for cycle in range(start, end + 1)
    )
    lines = [header.rstrip()]
    for rec, stages in zip(window, all_stages):
        row = rec.instr.text.ljust(label_width)
        for cycle in range(start, end + 1):
            row += stages.get(cycle, ".").ljust(cell)
        lines.append(row.rstrip())
    return "\n".join(lines)


def select_offsets(trace: Sequence[DynInstr]) -> list[tuple[str, int]]:
    """(instruction text, select cycle relative to the first selected one);
    handy for asserting schedules in tests."""
    selected = [rec for rec in trace if rec.select_cycle is not None]
    if not selected:
        return []
    origin = min(rec.select_cycle for rec in selected)
    return [(rec.instr.text, rec.select_cycle - origin) for rec in selected]
