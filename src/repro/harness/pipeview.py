"""Pipeline diagrams from event streams — the paper's Figures 5 and 7.

The renderer consumes the :mod:`repro.obs.events` trace: either events
captured live from a run (``Machine.run(..., bus=...)``, rendered by
:func:`pipeline_diagram_from_events`) or the stage timelines derived
from retired :class:`DynInstr` records (:func:`pipeline_diagram`, which
routes through the same :func:`~repro.obs.events.lifecycle_events`
source of truth):

.. code-block:: text

    Cycle:            0    1    2    3    4    5
    sll r1, #2, r2    SCH  RF   RF   EXE  CV   CV
    add r2, r3, r4    .    SCH  RF   RF   EXE  CV

Stages: ``SCH`` the select cycle, ``RF`` register read, ``EXE`` execution,
``CV`` format conversion (RB producers only), ``WB`` write-back.  Fetch
and rename are omitted by default (they are long and uniform); pass
``include_frontend=True`` for the full pipeline.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.machine import SELECT_TO_EXEC
from repro.core.window import DynInstr
from repro.obs.events import EventKind, TraceEvent, lifecycle_events

#: Stage labels by event kind; bypass/retire events carry no pipe stage.
_BACKEND_LABELS = {
    EventKind.SELECT: "SCH",
    EventKind.REGISTER_READ: "RF",
    EventKind.EXECUTE: "EXE",
    EventKind.CONVERT: "CV",
    EventKind.WRITEBACK: "WB",
}
_FRONTEND_LABELS = {
    EventKind.FETCH: "F",
    EventKind.RENAME: "REN",
}


def stages_from_events(
    events: Iterable[TraceEvent], include_frontend: bool = False
) -> dict[int, str]:
    """Cycle -> stage label for one instruction's events.

    Backend stages win cycle collisions; frontend stages (fetch, rename)
    fill in only where requested and unoccupied, matching the original
    renderer's precedence.
    """
    events = list(events)
    stages: dict[int, str] = {}
    for event in events:
        label = _BACKEND_LABELS.get(event.kind)
        if label is None:
            continue
        for i in range(event.dur):
            stages[event.cycle + i] = label
    if include_frontend:
        for event in events:
            label = _FRONTEND_LABELS.get(event.kind)
            if label is not None:
                stages.setdefault(event.cycle, label)
    return stages


def instruction_stages(rec: DynInstr) -> dict[int, str]:
    """Map absolute cycle -> stage label for one traced instruction."""
    if rec.select_cycle is None:
        return {}
    return stages_from_events(
        lifecycle_events(rec, SELECT_TO_EXEC, include_frontend=False)
    )


def _render(
    rows: Sequence[tuple[str, dict[int, str]]], max_cycles: int
) -> str:
    """Shared diagram renderer over (label, stage-map) rows."""
    if not rows:
        raise ValueError("no selected instructions in the requested window")
    start = min(min(stages) for _, stages in rows)
    end = max(max(stages) for _, stages in rows)
    if end - start + 1 > max_cycles:
        end = start + max_cycles - 1

    label_width = max(len(label) for label, _ in rows) + 2
    cell = 5
    header = "Cycle:".ljust(label_width) + "".join(
        str(cycle - start).ljust(cell) for cycle in range(start, end + 1)
    )
    lines = [header.rstrip()]
    for label, stages in rows:
        row = label.ljust(label_width)
        for cycle in range(start, end + 1):
            row += stages.get(cycle, ".").ljust(cell)
        lines.append(row.rstrip())
    return "\n".join(lines)


def pipeline_diagram(
    trace: Sequence[DynInstr],
    first: int = 0,
    count: int = 16,
    include_frontend: bool = False,
    max_cycles: int = 40,
) -> str:
    """Render ``count`` traced instructions starting at index ``first``."""
    rows = [
        (rec.instr.text, stages_from_events(
            lifecycle_events(rec, SELECT_TO_EXEC, include_frontend=include_frontend),
            include_frontend=include_frontend,
        ))
        for rec in trace[first:first + count]
        if rec.select_cycle is not None
    ]
    return _render(rows, max_cycles)


def pipeline_diagram_from_events(
    events: Iterable[TraceEvent],
    first: int = 0,
    count: int = 16,
    include_frontend: bool = False,
    max_cycles: int = 40,
) -> str:
    """Render a diagram straight from a captured event stream.

    ``first``/``count`` index instructions (in ``seq`` order, which is
    program order), exactly as :func:`pipeline_diagram` indexes the
    retired-instruction trace.
    """
    by_seq: dict[int, list[TraceEvent]] = {}
    for event in events:
        if event.seq < 0:
            continue  # machine-level events (empty-ROB stalls) have no row
        by_seq.setdefault(event.seq, []).append(event)
    rows = []
    for seq in sorted(by_seq)[first:first + count]:
        group = by_seq[seq]
        if not any(e.kind is EventKind.SELECT for e in group):
            continue
        text = next((e.text for e in group if e.text), f"#{seq}")
        rows.append((text, stages_from_events(group, include_frontend=include_frontend)))
    return _render(rows, max_cycles)


def select_offsets(trace: Sequence[DynInstr]) -> list[tuple[str, int]]:
    """(instruction text, select cycle relative to the first selected one);
    handy for asserting schedules in tests."""
    selected = [rec for rec in trace if rec.select_cycle is not None]
    if not selected:
        return []
    origin = min(rec.select_cycle for rec in selected)
    return [(rec.instr.text, rec.select_cycle - origin) for rec in selected]
