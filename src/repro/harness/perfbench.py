"""Simulator performance benchmarks -> ``BENCH_perf.json``.

Two measurements, written to a repo-root artifact by ``repro bench`` (and
the CI perf-smoke job):

* **throughput** — instructions simulated per host-second for a few
  representative (machine, workload) pairs, for both cycle engines
  (SoA columns and object reference) with the cycle-skipping
  fast-forward on and off.  Skip/no-skip run as alternating-order pairs
  and ``skip_speedup`` is the median per-pair ratio (host drift
  cancels); all engine × mode combinations are asserted to produce
  identical statistics, so this doubles as an equivalence smoke test.
* **sweep** — a cold (uncached) ``run_matrix`` timed serially and through
  the process-pool path, with the result dictionaries compared for
  equality.  Each arm records the dispatch policy actually used; on a
  host too narrow for the pool (``cpus <= 2``) the ratio is omitted
  with a note instead of publishing host noise.
* **batched_sweep** — the 8-config Fig. 9 matrix on one workload,
  config-at-a-time serial vs one ``run_soa_batch`` call, interleaved
  best-of-repeats with serialized results asserted identical.  The
  batched throughput feeds the BENCH_history gate as its own pair.
* **sampler_overhead** — the same run with the interval-timeline sampler
  on and off, so the "sampling costs ≤2% throughput" claim is measured,
  not asserted.  The paired runs are also appended to ``BENCH_obs.json``
  (tagged ``<workload>[timeline]`` / ``<workload>[no-timeline]``) so the
  longitudinal host-profiling record carries both sides.

The file also carries a fixed ``reference`` block: the throughput of the
pre-optimization simulator, measured once at the seed commit, so the
artifact always shows before/after numbers.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro.core.config import MachineConfig
from repro.core.machine import Machine
from repro.core.presets import baseline, ideal, rb_limited
from repro.harness.runner import SimulationRunner
from repro.obs.log import get_logger
from repro.utils.files import atomic_write_text
from repro.workloads.suite import build

log = get_logger(__name__)

PERF_VERSION = 1
PERF_FILENAME = "BENCH_perf.json"

#: Throughput of the unoptimized simulator, measured at the seed commit
#: on the same container class CI uses (Ideal-8w on ijpeg: 19050
#: instructions in ~1.49s).  Kept fixed so BENCH_perf.json always shows
#: a before/after pair; regenerate only when re-baselining deliberately.
SEED_REFERENCE = {
    "machine": "Ideal-8w",
    "workload": "ijpeg",
    "instr_per_sec": 12_800,
    "note": "pre-optimization throughput at the growth seed",
}

DEFAULT_KERNELS = ["ijpeg", "li", "compress"]


def _default_pairs() -> list[tuple[MachineConfig, str]]:
    return [
        (ideal(8), "ijpeg"),
        (baseline(4), "li"),
        (rb_limited(4), "compress"),
    ]


def throughput_benchmark(
    pairs: list[tuple[MachineConfig, str]] | None = None,
    repeats: int = 5,
    engines: tuple[str, ...] = ("soa", "objects"),
) -> list[dict]:
    """Per-pair instructions/second for both engines, skip on vs off.

    The skip/no-skip modes are timed as back-to-back *pairs* with
    alternating order (the scheme :func:`sampler_overhead_benchmark`
    already uses): slow host drift hits both sides of a pair and
    cancels, where unpaired best-of-N reads ±5% of pure noise on
    identical work.  ``skip_speedup`` is the **median** per-pair ratio;
    per-mode ``instr_per_sec`` stays best-of-repeats (a throughput
    headline wants the least-disturbed run).

    Every (engine, mode) run of a pair must serialize to identical
    statistics (raises otherwise), so this doubles as an equivalence
    smoke test across all four combinations.  The top-level ``skip`` /
    ``no_skip`` rows carry the first engine (the SoA fast path — the
    headline ``repro bench --compare`` gates on); the per-engine rows
    sit under ``engines`` with the SoA-vs-objects ``engine_speedup``
    ratio alongside.
    """
    results = []
    for config, workload in pairs if pairs is not None else _default_pairs():
        program = build(workload)
        per_engine: dict[str, dict] = {}
        serialized: dict[tuple[str, str], str] = {}
        skipped_cycles = 0
        for engine in engines:
            machine = Machine(config)
            # Warm both modes once so one-time costs (semantics
            # compilation, rename memos, caches) land outside the pairs.
            stats = machine.run(program, cycle_skip=True, engine=engine)
            skipped = machine.skipped_cycles
            machine.run(program, cycle_skip=False, engine=engine)
            best = {"skip": float("inf"), "no_skip": float("inf")}
            ratios: list[float] = []
            for index in range(max(1, repeats)):
                order = (("skip", True), ("no_skip", False))
                if index % 2:
                    order = tuple(reversed(order))
                pair_seconds: dict[str, float] = {}
                for label, cycle_skip in order:
                    started = time.perf_counter()
                    stats = machine.run(
                        program, cycle_skip=cycle_skip, engine=engine
                    )
                    pair_seconds[label] = time.perf_counter() - started
                    best[label] = min(best[label], pair_seconds[label])
                    serialized[(engine, label)] = json.dumps(
                        stats.to_dict(), sort_keys=True
                    )
                ratios.append(pair_seconds["no_skip"] / pair_seconds["skip"])
            ratios.sort()
            per_engine[engine] = {
                "skip": {
                    "seconds": round(best["skip"], 4),
                    "instr_per_sec": round(
                        stats.instructions / best["skip"], 1
                    ),
                    "cycles_per_sec": round(stats.cycles / best["skip"], 1),
                },
                "no_skip": {
                    "seconds": round(best["no_skip"], 4),
                    "instr_per_sec": round(
                        stats.instructions / best["no_skip"], 1
                    ),
                    "cycles_per_sec": round(
                        stats.cycles / best["no_skip"], 1
                    ),
                },
                "skip_speedup": round(ratios[len(ratios) // 2], 3),
                "skipped_cycles": skipped,
            }
        reference = serialized[(engines[0], "skip")]
        for key, blob in serialized.items():
            if blob != reference:
                raise AssertionError(
                    f"engine/mode {key} changed results for "
                    f"{config.name} on {workload}"
                )
        headline = per_engine[engines[0]]
        skipped_cycles = headline["skipped_cycles"]
        entry = {
            "machine": config.name,
            "workload": workload,
            "instructions": stats.instructions,
            "cycles": stats.cycles,
            "skipped_cycles": skipped_cycles,
            "engine": engines[0],
            "skip": headline["skip"],
            "no_skip": headline["no_skip"],
            "skip_speedup": headline["skip_speedup"],
            "engines": per_engine,
        }
        if "soa" in per_engine and "objects" in per_engine:
            entry["engine_speedup"] = round(
                per_engine["soa"]["skip"]["instr_per_sec"]
                / per_engine["objects"]["skip"]["instr_per_sec"],
                3,
            )
        results.append(entry)
        log.info(
            "throughput %s/%s: %s",
            config.name, workload,
            ", ".join(
                f"{name} {row['skip']['instr_per_sec']:.0f} instr/s"
                for name, row in per_engine.items()
            ),
        )
    return results


def sweep_benchmark(
    configs: list[MachineConfig] | None = None,
    workloads: list[str] | None = None,
    jobs: int = 2,
) -> dict:
    """Cold serial vs pool-dispatched ``run_matrix``, results compared.

    Both arms record the dispatch policy :meth:`run_jobs` *actually*
    used.  On a host with ``os.cpu_count() <= 2`` the pool arm falls
    back to serial dispatch, so a pool-vs-serial ratio would be two
    timings of the same code path — pure host noise (BENCH_perf once
    published 0.868 that way).  There the ``speedup`` field is ``None``
    with a ``speedup_note`` explaining why, instead of a noise number.
    """
    if configs is None:
        configs = [baseline(4), ideal(4)]
    if workloads is None:
        workloads = DEFAULT_KERNELS
    timings: dict[str, float] = {}
    snapshots: dict[str, dict] = {}
    dispatches: dict[str, dict | None] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        for label, width in (("serial", None), ("parallel", jobs)):
            runner = SimulationRunner(
                cache_path=Path(tmp) / f"{label}.json",
                bench_path=Path(tmp) / f"{label}-bench.json",
                jobs=width,
            )
            started = time.perf_counter()
            results = runner.run_matrix(configs, workloads)
            timings[label] = time.perf_counter() - started
            dispatches[label] = runner.last_dispatch
            snapshots[label] = {
                f"{name}::{workload}": stats.to_dict()
                for (name, workload), stats in results.items()
            }
    identical = json.dumps(snapshots["serial"], sort_keys=True) == json.dumps(
        snapshots["parallel"], sort_keys=True
    )
    if not identical:
        raise AssertionError("parallel run_matrix diverged from serial results")
    parallel_policy = (dispatches["parallel"] or {}).get("policy")
    entry = {
        "pairs": len(configs) * len(workloads),
        "jobs": jobs,
        "serial_seconds": round(timings["serial"], 3),
        "parallel_seconds": round(timings["parallel"], 3),
        "dispatch": dispatches,
        "results_identical": identical,
    }
    if parallel_policy == "pool":
        entry["speedup"] = round(timings["serial"] / timings["parallel"], 3)
    else:
        entry["speedup"] = None
        entry["speedup_note"] = (
            f"pool fell back to {parallel_policy} dispatch on a "
            f"{os.cpu_count()}-cpu host; a pool-vs-serial ratio here "
            "would measure host noise, not dispatch"
        )
    return entry


def batched_sweep_benchmark(
    workload: str = "vortex",
    repeats: int = 3,
) -> dict:
    """The Fig. 9 matrix: one batched run vs config-at-a-time serial runs.

    Both arms simulate the full 8-config
    :func:`~repro.core.presets.paper_matrix` on one workload with the
    SoA engine; the serial arm runs each config's solo ``Machine.run``
    back to back, the batched arm drives all eight through
    :func:`~repro.core.engine.run_soa_batch`.  Arms are warmed once
    (semantics memos, and the batch's per-program probe/plan cache —
    the steady state a ``repro sweep`` or ``repro serve`` process
    operates in) and then timed as interleaved best-of-``repeats``
    pairs, so slow host drift hits both sides.  The first repeat also
    asserts every batched config's serialized stats equal its solo
    run's.  The speedup is workload-dependent — sharing covers fetch,
    decode, rename-plan, and steering work, and bigger static footprints
    amortize more (ijpeg ~1.6x, vortex/perl ~1.8-1.9x on a 1-cpu
    container) — so the row records the workload alongside the ratio.
    """
    from repro.core.engine import run_soa_batch
    from repro.core.presets import paper_matrix

    configs = paper_matrix()
    program = build(workload)
    # Warm both arms: solo semantics/rename memos live on Machine
    # instances (rebuilt fresh per timed rep, like run_matrix builds
    # them), the batch probe/plan cache on the program object.
    solo_reference = [Machine(config).run(program) for config in configs]
    run_soa_batch([Machine(config) for config in configs], program)
    best_serial = best_batch = float("inf")
    batch_stats = None
    for _ in range(max(1, repeats)):
        machines = [Machine(config) for config in configs]
        started = time.perf_counter()
        for machine in machines:
            machine.run(program)
        best_serial = min(best_serial, time.perf_counter() - started)
        machines = [Machine(config) for config in configs]
        started = time.perf_counter()
        batch_stats = run_soa_batch(machines, program)
        best_batch = min(best_batch, time.perf_counter() - started)
    for solo, batched in zip(solo_reference, batch_stats):
        if (
            json.dumps(solo.to_dict(), sort_keys=True)
            != json.dumps(batched.to_dict(), sort_keys=True)
        ):
            raise AssertionError(
                f"batched {batched.machine} on {workload} diverged from solo"
            )
    instructions = sum(stats.instructions for stats in batch_stats)
    entry = {
        "workload": workload,
        "configs": len(configs),
        "repeats": max(1, repeats),
        "instructions": instructions,
        "serial_seconds": round(best_serial, 3),
        "batch_seconds": round(best_batch, 3),
        "speedup": round(best_serial / best_batch, 3),
        "instr_per_sec": round(instructions / best_batch, 1),
        "serial_instr_per_sec": round(instructions / best_serial, 1),
        "results_identical": True,
    }
    log.info(
        "batched sweep %s: %d configs, serial %.2fs vs batched %.2fs "
        "(%.2fx, %.0f instr/s)",
        workload, len(configs), best_serial, best_batch,
        entry["speedup"], entry["instr_per_sec"],
    )
    return entry


def sampler_overhead_benchmark(
    config: MachineConfig | None = None,
    workload: str = "ijpeg",
    repeats: int = 3,
    bench_path: Path | str | None = None,
) -> dict:
    """Interval-sampler cost: one run timed with timelines on and off.

    The overhead is far below host noise on a shared CI box, so the two
    modes are timed as back-to-back *pairs* with alternating order and
    the reported overhead is the median per-pair ratio — slow drift
    (turbo, co-tenants) hits both sides of a pair and cancels, where a
    best-of-N per mode happily reports ±5% of pure noise.  When
    ``bench_path`` is set, both sides are appended to that
    ``BENCH_obs.json`` as :class:`RunProfile` rows with tagged workload
    names, so the host-profiling history records the pair.
    """
    from repro.obs.profile import BenchLog, RunProfile

    config = config if config is not None else rb_limited(4)
    program = build(workload)
    machine = Machine(config)
    # Warm both paths once so first-call costs don't land in a pair.
    stats_on = machine.run(program, timeline=True)
    stats_off = machine.run(program, timeline=False)
    seconds = {"timeline": float("inf"), "no-timeline": float("inf")}
    ratios: list[float] = []
    for index in range(max(1, repeats)):
        order = (("timeline", True), ("no-timeline", False))
        if index % 2:
            order = tuple(reversed(order))
        pair: dict[str, float] = {}
        for label, enabled in order:
            started = time.perf_counter()
            machine.run(program, timeline=enabled)
            pair[label] = time.perf_counter() - started
            seconds[label] = min(seconds[label], pair[label])
        ratios.append(pair["timeline"] / pair["no-timeline"])
    ratios.sort()
    overhead = ratios[len(ratios) // 2] - 1.0
    timeline = stats_on.timeline
    by_mode = {"timeline": stats_on, "no-timeline": stats_off}
    if bench_path is not None:
        bench = BenchLog(bench_path)
        for label in ("timeline", "no-timeline"):
            stats = by_mode[label]
            bench.record(RunProfile.measure(
                machine=config.name,
                workload=f"{workload}[{label}]",
                wall_seconds=seconds[label],
                cycles=stats.cycles,
                instructions=stats.instructions,
            ))
        bench.save()
    log.info(
        "sampler overhead %s/%s: %.4fs on vs %.4fs off (%+.2f%%)",
        config.name, workload, seconds["timeline"], seconds["no-timeline"],
        overhead * 100,
    )
    return {
        "machine": config.name,
        "workload": workload,
        "rows": len(timeline.rows),
        "stride": timeline.stride,
        "pairs": len(ratios),
        "timeline_seconds": round(seconds["timeline"], 4),
        "no_timeline_seconds": round(seconds["no-timeline"], 4),
        "overhead_fraction": round(overhead, 4),
    }


def write_bench_perf(
    path: Path | str | None = None,
    jobs: int = 2,
    kernels: list[str] | None = None,
    history_path: Path | str | None = None,
    batched_workload: str = "vortex",
) -> dict:
    """Run both benchmarks and write ``BENCH_perf.json``; returns the payload.

    ``BENCH_perf.json`` is a *snapshot* — each run overwrites it — so
    every run also appends one condensed row to ``BENCH_history.jsonl``
    (next to the snapshot unless ``history_path`` says otherwise), the
    longitudinal record ``repro bench --compare`` gates against.
    """
    from repro.harness.perfhistory import (
        HISTORY_FILENAME, append_history, history_record,
    )

    if path is None:
        path = Path(__file__).resolve().parents[3] / PERF_FILENAME
    path = Path(path)
    kernels = kernels if kernels else DEFAULT_KERNELS
    payload = {
        "version": PERF_VERSION,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "reference": dict(SEED_REFERENCE),
        "throughput": throughput_benchmark(),
        "sweep": sweep_benchmark(workloads=kernels, jobs=jobs),
        "batched_sweep": batched_sweep_benchmark(workload=batched_workload),
        "sampler_overhead": sampler_overhead_benchmark(
            bench_path=(
                path.parent / ".repro_cache" / "BENCH_obs.json"
                if path.name == PERF_FILENAME
                else path.parent / "BENCH_obs.json"
            ),
        ),
        "timestamp": time.time(),
    }
    atomic_write_text(path, json.dumps(payload, indent=2))
    log.info("wrote %s", path)
    if history_path is None:
        history_path = path.parent / HISTORY_FILENAME
    append_history(history_path, history_record(payload))
    log.info("appended run to %s", history_path)
    return payload
