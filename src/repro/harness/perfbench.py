"""Simulator performance benchmarks -> ``BENCH_perf.json``.

Two measurements, written to a repo-root artifact by ``repro bench`` (and
the CI perf-smoke job):

* **throughput** — instructions simulated per host-second for a few
  representative (machine, workload) pairs, with the cycle-skipping
  fast-forward on and off.  The two modes are asserted to produce
  identical statistics, so this doubles as an equivalence smoke test.
* **sweep** — a cold (uncached) ``run_matrix`` timed serially and through
  the process-pool path, with the result dictionaries compared for
  equality.  On multi-core hosts the ratio is the sweep speedup; on a
  single-core CI box it honestly records ~1x.

The file also carries a fixed ``reference`` block: the throughput of the
pre-optimization simulator, measured once at the seed commit, so the
artifact always shows before/after numbers.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro.core.config import MachineConfig
from repro.core.machine import Machine
from repro.core.presets import baseline, ideal, rb_limited
from repro.harness.runner import SimulationRunner
from repro.obs.log import get_logger
from repro.utils.files import atomic_write_text
from repro.workloads.suite import build

log = get_logger(__name__)

PERF_VERSION = 1
PERF_FILENAME = "BENCH_perf.json"

#: Throughput of the unoptimized simulator, measured at the seed commit
#: on the same container class CI uses (Ideal-8w on ijpeg: 19050
#: instructions in ~1.49s).  Kept fixed so BENCH_perf.json always shows
#: a before/after pair; regenerate only when re-baselining deliberately.
SEED_REFERENCE = {
    "machine": "Ideal-8w",
    "workload": "ijpeg",
    "instr_per_sec": 12_800,
    "note": "pre-optimization throughput at the growth seed",
}

DEFAULT_KERNELS = ["ijpeg", "li", "compress"]


def _default_pairs() -> list[tuple[MachineConfig, str]]:
    return [
        (ideal(8), "ijpeg"),
        (baseline(4), "li"),
        (rb_limited(4), "compress"),
    ]


def throughput_benchmark(
    pairs: list[tuple[MachineConfig, str]] | None = None, repeats: int = 2
) -> list[dict]:
    """Per-pair instructions/second, cycle skipping on vs off.

    Each mode reports the best of ``repeats`` runs; the two modes'
    statistics must serialize identically (raises otherwise).
    """
    results = []
    for config, workload in pairs if pairs is not None else _default_pairs():
        program = build(workload)
        machine = Machine(config)
        modes: dict[str, dict] = {}
        serialized: dict[str, str] = {}
        skipped_cycles = 0
        for label, cycle_skip in (("skip", True), ("no_skip", False)):
            best = float("inf")
            for _ in range(max(1, repeats)):
                started = time.perf_counter()
                stats = machine.run(program, cycle_skip=cycle_skip)
                best = min(best, time.perf_counter() - started)
            if cycle_skip:
                skipped_cycles = machine.skipped_cycles
            serialized[label] = json.dumps(stats.to_dict(), sort_keys=True)
            modes[label] = {
                "seconds": round(best, 4),
                "instr_per_sec": round(stats.instructions / best, 1),
                "cycles_per_sec": round(stats.cycles / best, 1),
            }
        if serialized["skip"] != serialized["no_skip"]:
            raise AssertionError(
                f"cycle skipping changed results for {config.name} on {workload}"
            )
        results.append({
            "machine": config.name,
            "workload": workload,
            "instructions": stats.instructions,
            "cycles": stats.cycles,
            "skipped_cycles": skipped_cycles,
            "skip": modes["skip"],
            "no_skip": modes["no_skip"],
            "skip_speedup": round(
                modes["no_skip"]["seconds"] / modes["skip"]["seconds"], 3
            ),
        })
        log.info(
            "throughput %s/%s: %.0f instr/s (skip), %.0f (no-skip)",
            config.name, workload,
            modes["skip"]["instr_per_sec"], modes["no_skip"]["instr_per_sec"],
        )
    return results


def sweep_benchmark(
    configs: list[MachineConfig] | None = None,
    workloads: list[str] | None = None,
    jobs: int = 2,
) -> dict:
    """Cold serial vs parallel ``run_matrix``, with results compared."""
    if configs is None:
        configs = [baseline(4), ideal(4)]
    if workloads is None:
        workloads = DEFAULT_KERNELS
    timings: dict[str, float] = {}
    snapshots: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        for label, width in (("serial", None), ("parallel", jobs)):
            runner = SimulationRunner(
                cache_path=Path(tmp) / f"{label}.json",
                bench_path=Path(tmp) / f"{label}-bench.json",
                jobs=width,
            )
            started = time.perf_counter()
            results = runner.run_matrix(configs, workloads)
            timings[label] = time.perf_counter() - started
            snapshots[label] = {
                f"{name}::{workload}": stats.to_dict()
                for (name, workload), stats in results.items()
            }
    identical = json.dumps(snapshots["serial"], sort_keys=True) == json.dumps(
        snapshots["parallel"], sort_keys=True
    )
    if not identical:
        raise AssertionError("parallel run_matrix diverged from serial results")
    return {
        "pairs": len(configs) * len(workloads),
        "jobs": jobs,
        "serial_seconds": round(timings["serial"], 3),
        "parallel_seconds": round(timings["parallel"], 3),
        "speedup": round(timings["serial"] / timings["parallel"], 3),
        "results_identical": identical,
    }


def write_bench_perf(
    path: Path | str | None = None,
    jobs: int = 2,
    kernels: list[str] | None = None,
    history_path: Path | str | None = None,
) -> dict:
    """Run both benchmarks and write ``BENCH_perf.json``; returns the payload.

    ``BENCH_perf.json`` is a *snapshot* — each run overwrites it — so
    every run also appends one condensed row to ``BENCH_history.jsonl``
    (next to the snapshot unless ``history_path`` says otherwise), the
    longitudinal record ``repro bench --compare`` gates against.
    """
    from repro.harness.perfhistory import (
        HISTORY_FILENAME, append_history, history_record,
    )

    if path is None:
        path = Path(__file__).resolve().parents[3] / PERF_FILENAME
    path = Path(path)
    kernels = kernels if kernels else DEFAULT_KERNELS
    payload = {
        "version": PERF_VERSION,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "reference": dict(SEED_REFERENCE),
        "throughput": throughput_benchmark(),
        "sweep": sweep_benchmark(workloads=kernels, jobs=jobs),
        "timestamp": time.time(),
    }
    atomic_write_text(path, json.dumps(payload, indent=2))
    log.info("wrote %s", path)
    if history_path is None:
        history_path = path.parent / HISTORY_FILENAME
    append_history(history_path, history_record(payload))
    log.info("appended run to %s", history_path)
    return payload
