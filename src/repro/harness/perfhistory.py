"""Append-only perf history and the ``repro bench --compare`` gate.

``repro bench`` snapshots the full benchmark payload to
``BENCH_perf.json`` — which each run *overwrites*, so the repo only ever
shows the latest numbers.  This module keeps the longitudinal record:
every run appends one condensed row (host fingerprint, per-pair
throughput, sweep speedup) to ``BENCH_history.jsonl``, and
:func:`compare` turns that history into a regression gate — the current
run's throughput against the median of the trailing window of prior
runs *from the same host fingerprint*, failing when any pair falls more
than ``tolerance`` below its baseline.

Fingerprint filtering matters because the history is committed: CI
containers, laptops, and other contributors' machines all append rows,
and comparing across host classes would gate on hardware, not code.  A
host with no prior rows simply has no baseline yet and passes.
"""

from __future__ import annotations

import json
import os
import platform
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median

from repro.obs.log import get_logger

log = get_logger(__name__)

HISTORY_VERSION = 1
HISTORY_FILENAME = "BENCH_history.jsonl"

#: Default regression gate: fail when a pair drops >25% below its
#: trailing-window median.  Generous because wall-clock throughput on
#: shared CI runners is noisy; tighten per-invocation with --tolerance.
DEFAULT_TOLERANCE = 0.25
DEFAULT_WINDOW = 5


def host_fingerprint() -> dict:
    """The host identity stamped on every history row."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
    }


def fingerprint_key(host: Mapping) -> str:
    """The comparison-grouping key for one host fingerprint."""
    return (
        f"{host.get('platform', '?')}/py{host.get('python', '?')}"
        f"/cpu{host.get('cpus', '?')}"
    )


def history_record(payload: Mapping) -> dict:
    """Condense a ``BENCH_perf.json`` payload into one history row."""
    throughput = {
        f"{entry['machine']}::{entry['workload']}": entry["skip"]["instr_per_sec"]
        for entry in payload.get("throughput", ())
    }
    batched = payload.get("batched_sweep") or {}
    if isinstance(batched.get("instr_per_sec"), (int, float)):
        # The batched Fig. 9 matrix gates like any other pair: its
        # batched throughput against the trailing median on this host.
        throughput[f"batched-sweep::{batched.get('workload', '?')}"] = (
            batched["instr_per_sec"]
        )
    return {
        "version": HISTORY_VERSION,
        "timestamp": payload.get("timestamp", time.time()),
        "host": dict(payload.get("host") or host_fingerprint()),
        "throughput": throughput,
        "sweep_speedup": payload.get("sweep", {}).get("speedup"),
        "batched_sweep_speedup": batched.get("speedup"),
    }


def append_history(path: Path | str, record: Mapping) -> Path:
    """Append one row; plain ``open("a")`` keeps the file append-only."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_history(path: Path | str) -> list[dict]:
    """Every parseable row, oldest first; corrupt lines are skipped.

    A merge conflict or interrupted append must not brick the gate —
    bad lines are logged and dropped rather than raised.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: list[dict] = []
    skipped = 0
    with path.open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(entry, dict) and isinstance(entry.get("throughput"), dict):
                records.append(entry)
            else:
                skipped += 1
    if skipped:
        log.warning("%s: skipped %d corrupt history line(s)", path, skipped)
    return records


@dataclass
class PairComparison:
    """One (machine, workload) pair against its trailing-window median."""

    pair: str
    current: float
    baseline: float | None  # None = no prior run on this host fingerprint
    runs: int               # prior runs the baseline median covers
    regressed: bool

    @property
    def ratio(self) -> float | None:
        if self.baseline is None or self.baseline <= 0:
            return None
        return self.current / self.baseline

    def as_dict(self) -> dict:
        return {
            "pair": self.pair,
            "current": self.current,
            "baseline": self.baseline,
            "runs": self.runs,
            "ratio": round(self.ratio, 4) if self.ratio is not None else None,
            "regressed": self.regressed,
        }


@dataclass
class RegressionReport:
    """The full ``--compare`` verdict across every benchmarked pair."""

    tolerance: float
    window: int
    fingerprint: str
    baseline_runs: int
    comparisons: list[PairComparison] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(entry.regressed for entry in self.comparisons)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "tolerance": self.tolerance,
            "window": self.window,
            "fingerprint": self.fingerprint,
            "baseline_runs": self.baseline_runs,
            "comparisons": [entry.as_dict() for entry in self.comparisons],
        }

    def summary(self) -> str:
        lines = [
            f"perf compare: trailing-median window {self.window}, "
            f"tolerance {self.tolerance:.0%}, "
            f"{self.baseline_runs} prior run(s) on this host"
        ]
        for entry in self.comparisons:
            if entry.baseline is None:
                lines.append(
                    f"  {entry.pair:<28} {entry.current:>10.0f} instr/s "
                    f"(no baseline yet)"
                )
                continue
            verdict = "REGRESSED" if entry.regressed else "ok"
            lines.append(
                f"  {entry.pair:<28} {entry.current:>10.0f} instr/s "
                f"vs median {entry.baseline:.0f} "
                f"({entry.ratio:.2f}x)  {verdict}"
            )
        lines.append(
            "PASS: no pair regressed" if self.ok
            else f"FAIL: {sum(e.regressed for e in self.comparisons)} pair(s) "
                 f"below {1 - self.tolerance:.0%} of baseline"
        )
        return "\n".join(lines)


def compare(
    record: Mapping,
    history: Sequence[Mapping],
    tolerance: float = DEFAULT_TOLERANCE,
    window: int = DEFAULT_WINDOW,
) -> RegressionReport:
    """Gate ``record`` against the trailing window of ``history``.

    ``history`` must *exclude* the record under test (compare before
    appending, or slice off the last row).  Only prior rows with the
    same host fingerprint participate; each pair's baseline is the
    median of its newest ``window`` observations.
    """
    if not 0 < tolerance < 1:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    key = fingerprint_key(record.get("host", {}))
    prior = [
        row for row in history if fingerprint_key(row.get("host", {})) == key
    ]
    trailing = prior[-window:]
    report = RegressionReport(
        tolerance=tolerance, window=window,
        fingerprint=key, baseline_runs=len(trailing),
    )
    for pair, current in sorted(record.get("throughput", {}).items()):
        observations = [
            row["throughput"][pair]
            for row in trailing
            if isinstance(row["throughput"].get(pair), (int, float))
        ]
        if not observations:
            report.comparisons.append(
                PairComparison(pair, current, None, 0, False)
            )
            continue
        baseline = float(median(observations))
        regressed = baseline > 0 and current < baseline * (1 - tolerance)
        report.comparisons.append(
            PairComparison(pair, current, baseline, len(observations), regressed)
        )
    return report
