"""Experiment harness: regenerates every table and figure in the paper.

:mod:`repro.harness.runner` runs (machine, workload) pairs with a
persistent on-disk cache so the figure benchmarks can share simulation
results; :mod:`repro.harness.experiments` defines one entry point per
paper artifact (Table 1, Table 3, Figures 9-14, the §3.4 delay study and
the §5.2 bypass-usage numbers); :mod:`repro.harness.report` renders them
as text tables/bars and writes EXPERIMENTS.md.
"""

from repro.harness.experiments import (
    fig13_bypass_cases,
    fig14_limited_bypass,
    fig_ipc,
    headline_ratios,
    sec34_adder_delays,
    sec52_bypass_levels,
    table1_mix,
    table3_latencies,
)
from repro.harness.runner import ResultCache, SimulationRunner

__all__ = [
    "SimulationRunner",
    "ResultCache",
    "fig_ipc",
    "fig13_bypass_cases",
    "fig14_limited_bypass",
    "table1_mix",
    "table3_latencies",
    "sec34_adder_delays",
    "sec52_bypass_levels",
    "headline_ratios",
]
