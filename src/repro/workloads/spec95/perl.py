"""perl: string hashing into an associative array with linear probing.

Mirrors 134.perl's hash-heavy workloads: a rolling multiply-accumulate
hash over every character of a pseudo-random text, plus an open-addressed
(key, count) table updated every fourth character — byte extraction,
multiplies, and data-dependent probe loops.
"""

DESCRIPTION = "rolling string hash + open-addressed hash-table updates (134.perl)"

SOURCE = """
; perl95-like kernel
    .data
text:     .space 2048
table:    .space 4096            ; 256 slots x 16 (key, count)
checksum: .quad 0
    .text
main:
    lda   r1, text
    lda   r2, 256(zero)          ; 256 quads
    lda   r3, 5150(zero)
fill:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    stq   r3, 0(r1)
    lda   r1, 8(r1)
    sub   r2, #1, r2
    bgt   r2, fill

    lda   r5, text
    lda   r6, 0(zero)            ; character index
    lda   r7, 0(zero)            ; rolling hash
    lda   r20, table
loop:
    bic   r6, #7, r9
    add   r5, r9, r8
    ldq   r8, 0(r8)
    and   r6, #7, r9
    extb  r8, r9, r11            ; character
    mul   r7, #31, r7
    add   r7, r11, r7            ; h = h*31 + c
    and   r6, #3, r12
    cmpeq r12, #3, r12
    beq   r12, next              ; only every 4th char updates the table
    ; probe: slot = h & 255, linear probing capped at 8 slots
    and   r7, #255, r13
    lda   r19, 8(zero)
probe:
    sll   r13, #4, r14
    add   r20, r14, r14          ; slot address
    ldq   r15, 0(r14)            ; stored key
    beq   r15, empty
    cmpeq r15, r7, r16
    bne   r16, hit
    add   r13, #1, r13
    and   r13, #255, r13
    sub   r19, #1, r19
    bgt   r19, probe
    br    next                   ; table region saturated: drop the update
empty:
    stq   r7, 0(r14)             ; claim the slot
hit:
    ldq   r17, 8(r14)
    add   r17, #1, r17
    stq   r17, 8(r14)            ; count++
next:
    add   r6, #1, r6
    cmplt r6, #2048, r18
    bne   r18, loop

    ; fold counts
    lda   r5, 256(zero)
    lda   r6, table
    lda   r7, 0(zero)
sum:
    ldq   r8, 8(r6)
    add   r7, r8, r7
    lda   r6, 16(r6)
    sub   r5, #1, r5
    bgt   r5, sum
    stq   r7, checksum
    halt
"""
