"""gcc: compiler symbol-table traffic — chained hash inserts and lookups.

Mirrors 126.gcc's identifier handling: insert a few hundred symbols into
a bucketed hash table (bump-allocated chain nodes), then perform a storm
of lookups that walk the collision chains.  Pointer chasing with
data-dependent branch exits.
"""

DESCRIPTION = "symbol-table hash insert/lookup with chain walking (126.gcc)"

SOURCE = """
; gcc95-like kernel
    .data
buckets:  .space 512             ; 64 buckets x 8
pool:     .space 8192            ; 512 nodes x 16 (key, next)
checksum: .quad 0
    .text
main:
    lda   r1, 0(zero)            ; symbol counter
    lda   r2, pool               ; bump allocator
    lda   r3, 999(zero)          ; LCG state
    lda   r4, buckets
insert:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    srl   r3, #3, r5
    and   r5, #4095, r5          ; key
    and   r5, #63, r6            ; bucket index
    s8add r6, r4, r7             ; bucket address
    ldq   r8, 0(r7)              ; old chain head
    stq   r5, 0(r2)              ; node.key
    stq   r8, 8(r2)              ; node.next
    stq   r2, 0(r7)              ; bucket head = node
    lda   r2, 16(r2)
    add   r1, #1, r1
    cmplt r1, #256, r9
    bne   r9, insert

    lda   r1, 0(zero)            ; lookup counter
    lda   r10, 0(zero)           ; hits found
    lda   r11, 777(zero)         ; second LCG
lookup:
    mul   r11, #25173, r11
    add   r11, #13849, r11
    srl   r11, #3, r5
    and   r5, #4095, r5          ; probe key
    and   r5, #63, r6
    s8add r6, r4, r7
    ldq   r12, 0(r7)             ; chain head
walk:
    beq   r12, miss
    ldq   r13, 0(r12)
    cmpeq r13, r5, r14
    bne   r14, found
    ldq   r12, 8(r12)
    br    walk
found:
    add   r10, #1, r10
miss:
    add   r1, #1, r1
    cmplt r1, #1024, r9
    bne   r9, lookup

    stq   r10, checksum
    halt
"""
