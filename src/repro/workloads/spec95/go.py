"""go: board-position evaluation — neighbourhood scans over a 2-D grid.

Mirrors 099.go's evaluation loops: a 32x32 board of 2-bit stone values is
scanned cell by cell; each interior cell compares itself against its four
neighbours and accumulates an influence score.  Byte extraction from
packed quads, short unpredictable branches, and dense compare traffic.
"""

DESCRIPTION = "board neighbourhood evaluation over a packed 2-D grid (099.go)"

SOURCE = """
; go95-like kernel
    .data
board:    .space 1024            ; 32 x 32 bytes
checksum: .quad 0
    .text
main:
    ; fill the board with LCG values masked to 0..3
    lda   r1, board
    lda   r2, 128(zero)          ; 128 quads
    lda   r3, 4242(zero)
fill:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    stq   r3, 0(r1)
    lda   r1, 8(r1)
    sub   r2, #1, r2
    bgt   r2, fill

    lda   r20, board
    lda   r21, 0(zero)           ; score
    lda   r5, 1(zero)            ; row (1..30)
row:
    lda   r6, 1(zero)            ; col (1..30)
col:
    sll   r5, #5, r7             ; index = row*32 + col
    add   r7, r6, r7
    ; own stone
    bic   r7, #7, r8
    add   r20, r8, r9
    ldq   r9, 0(r9)
    and   r7, #7, r8
    extb  r9, r8, r10
    and   r10, #3, r10           ; stone value
    beq   r10, skip              ; empty point: nothing to score
    ; west neighbour
    sub   r7, #1, r11
    bic   r11, #7, r8
    add   r20, r8, r9
    ldq   r9, 0(r9)
    and   r11, #7, r8
    extb  r9, r8, r12
    and   r12, #3, r12
    cmpeq r12, r10, r13
    add   r21, r13, r21
    ; east neighbour
    add   r7, #1, r11
    bic   r11, #7, r8
    add   r20, r8, r9
    ldq   r9, 0(r9)
    and   r11, #7, r8
    extb  r9, r8, r12
    and   r12, #3, r12
    cmpeq r12, r10, r13
    add   r21, r13, r21
    ; north neighbour
    sub   r7, #32, r11
    bic   r11, #7, r8
    add   r20, r8, r9
    ldq   r9, 0(r9)
    and   r11, #7, r8
    extb  r9, r8, r12
    and   r12, #3, r12
    cmpeq r12, r10, r13
    add   r21, r13, r21
    ; south neighbour
    add   r7, #32, r11
    bic   r11, #7, r8
    add   r20, r8, r9
    ldq   r9, 0(r9)
    and   r11, #7, r8
    extb  r9, r8, r12
    and   r12, #3, r12
    cmpeq r12, r10, r13
    add   r21, r13, r21
skip:
    add   r6, #1, r6
    cmplt r6, #31, r14
    bne   r14, col
    add   r5, #1, r5
    cmplt r5, #31, r14
    bne   r14, row

    stq   r21, checksum
    halt
"""
