"""compress: LZW-style dictionary compression of a pseudo-random byte stream.

Mirrors 129.compress's inner loop: per input byte, form a (prefix, byte)
code, hash it, probe the code table, and either extend the phrase or emit
the prefix and insert a new entry.  Byte extraction, shifts, multiplies
for hashing, and a data-dependent hit/miss branch dominate.
"""

DESCRIPTION = "LZW-style hash-table compression loop (129.compress)"

SOURCE = """
; compress95-like kernel
    .data
input:    .space 1536
htab:     .space 8192            ; 1024 hash entries x 8 bytes
output:   .space 16384
checksum: .quad 0
    .text
main:
    ; fill the input with LCG bytes, a quad at a time
    lda   r1, input
    lda   r2, 192(zero)          ; 192 quads = 1536 bytes
    lda   r3, 12345(zero)
fill:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    stq   r3, 0(r1)
    lda   r1, 8(r1)
    sub   r2, #1, r2
    bgt   r2, fill

    lda   r5, input
    lda   r6, 0(zero)            ; byte index
    lda   r7, 0(zero)            ; prefix code
    lda   r10, output
    lda   r20, htab
    lda   r21, 1536(zero)        ; total bytes
loop:
    bic   r6, #7, r9             ; quad-aligned offset
    add   r5, r9, r8
    ldq   r8, 0(r8)
    and   r6, #7, r9
    extb  r8, r9, r11            ; current byte
    sll   r7, #8, r12
    bis   r12, r11, r12          ; code = (prefix << 8) | byte
    mul   r12, #40503, r13       ; multiplicative hash
    srl   r13, #5, r13
    and   r13, #8184, r13        ; entry offset, multiple of 8, < 8192
    add   r20, r13, r14
    ldq   r15, 0(r14)
    cmpeq r15, r12, r16
    bne   r16, hit
    stq   r12, 0(r14)            ; install the new code
    stq   r7, 0(r10)             ; emit the prefix
    lda   r10, 8(r10)
    mov   r11, r7                ; restart the phrase at this byte
    br    next
hit:
    mov   r12, r7                ; extend the phrase
next:
    add   r6, #1, r6
    cmplt r6, r21, r16
    bne   r16, loop

    lda   r22, output
    sub   r10, r22, r23          ; bytes emitted
    stq   r23, checksum
    halt
"""
