"""ijpeg: blocked integer transform — butterfly adds with scaling.

Mirrors 132.ijpeg's forward DCT: 8-point butterfly passes over the rows
and columns of 8x8 coefficient blocks, all in fixed point (adds, subs,
scaled adds, shifts, multiplies by small constants).  Wide independent
blocks expose abundant ILP — the bandwidth-friendly end of the suite.
"""

DESCRIPTION = "8x8 integer butterfly transform over coefficient blocks (132.ijpeg)"

SOURCE = """
; ijpeg95-like kernel
    .data
blocks:   .space 12288           ; 24 blocks x 64 coefficients x 8 bytes
checksum: .quad 0
    .text
main:
    lda   r1, blocks
    lda   r2, 1536(zero)         ; 24 * 64 quads
    lda   r3, 31415(zero)
fill:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    and   r3, #255, r4
    stq   r4, 0(r1)
    lda   r1, 8(r1)
    sub   r2, #1, r2
    bgt   r2, fill

    lda   r20, blocks
    lda   r21, 0(zero)           ; block index
block:
    lda   r5, 0(zero)            ; row index within the block
row:
    ; row address = blocks + block*512 + row*64
    sll   r21, #9, r6
    add   r20, r6, r6
    sll   r5, #6, r7
    add   r6, r7, r6
    ; load the 8 coefficients
    ldq   r8, 0(r6)
    ldq   r9, 8(r6)
    ldq   r10, 16(r6)
    ldq   r11, 24(r6)
    ldq   r12, 32(r6)
    ldq   r13, 40(r6)
    ldq   r14, 48(r6)
    ldq   r15, 56(r6)
    ; stage 1 butterflies
    add   r8, r15, r16
    sub   r8, r15, r15
    add   r9, r14, r17
    sub   r9, r14, r14
    add   r10, r13, r18
    sub   r10, r13, r13
    add   r11, r12, r19
    sub   r11, r12, r12
    ; stage 2: even part
    add   r16, r19, r8
    sub   r16, r19, r11
    add   r17, r18, r9
    sub   r17, r18, r10
    ; stage 2: odd part, scaled
    s4add r15, r12, r22
    s4sub r14, r13, r23
    mul   r10, #181, r10
    sra   r10, #8, r10
    mul   r11, #181, r11
    sra   r11, #8, r11
    ; store back
    stq   r8, 0(r6)
    stq   r9, 8(r6)
    stq   r10, 16(r6)
    stq   r11, 24(r6)
    stq   r22, 32(r6)
    stq   r23, 40(r6)
    stq   r14, 48(r6)
    stq   r15, 56(r6)
    add   r5, #1, r5
    cmplt r5, #8, r24
    bne   r24, row
    add   r21, #1, r21
    cmplt r21, #24, r24
    bne   r24, block

    ; fold a checksum over the first block
    lda   r6, blocks
    lda   r5, 64(zero)
    lda   r7, 0(zero)
sum:
    ldq   r8, 0(r6)
    add   r7, r8, r7
    lda   r6, 8(r6)
    sub   r5, #1, r5
    bgt   r5, sum
    stq   r7, checksum
    halt
"""
