"""m88ksim: an instruction-set interpreter — decode, dispatch, writeback.

Mirrors 124.m88ksim's simulation loop: fetch an encoded word, crack the
fields with shifts and masks, dispatch through a jump table (indirect
JMP, exercising the BTB), execute one of four ALU handlers against a
memory-resident register file, write the result back.
"""

DESCRIPTION = "CPU-simulator decode/dispatch loop with indirect jumps (124.m88ksim)"

SOURCE = """
; m88ksim95-like kernel
    .data
iprog:    .space 8192            ; 1024 encoded instructions x 8
regs:     .space 128             ; 16 simulated registers
jtab:     .quad op_add, op_sub, op_and, op_xor
checksum: .quad 0
    .text
main:
    ; generate the simulated program
    lda   r1, iprog
    lda   r2, 1024(zero)
    lda   r3, 1969(zero)
gen:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    srl   r3, #4, r4
    and   r4, #16383, r4         ; 14 encoded bits
    stq   r4, 0(r1)
    lda   r1, 8(r1)
    sub   r2, #1, r2
    bgt   r2, gen

    lda   r4, iprog              ; simulated PC
    lda   r3, 1024(zero)         ; instruction count
    lda   r20, regs
    lda   r21, jtab
loop:
    ldq   r5, 0(r4)              ; fetch
    and   r5, #3, r6             ; opcode
    srl   r5, #2, r7
    and   r7, #15, r7            ; rd
    srl   r5, #6, r8
    and   r8, #15, r8            ; rs
    srl   r5, #10, r9
    and   r9, #15, r9            ; rt
    s8add r8, r20, r10
    ldq   r10, 0(r10)            ; source value 1
    s8add r9, r20, r11
    ldq   r11, 0(r11)            ; source value 2
    s8add r6, r21, r12
    ldq   r12, 0(r12)            ; handler address
    jmp   (r12)
op_add:
    add   r10, r11, r13
    add   r13, #1, r13
    br    writeback
op_sub:
    sub   r10, r11, r13
    br    writeback
op_and:
    and   r10, r11, r13
    bis   r13, #1, r13
    br    writeback
op_xor:
    xor   r10, r11, r13
writeback:
    s8add r7, r20, r14
    stq   r13, 0(r14)
    lda   r4, 8(r4)
    sub   r3, #1, r3
    bgt   r3, loop

    ; checksum the simulated register file
    lda   r5, 16(zero)
    lda   r6, regs
    lda   r7, 0(zero)
sum:
    ldq   r8, 0(r6)
    add   r7, r8, r7
    lda   r6, 8(r6)
    sub   r5, #1, r5
    bgt   r5, sum
    stq   r7, checksum
    halt
"""
