"""li: lisp-style recursive tree evaluation with a real call stack.

Mirrors 130.li's recursive evaluator: a 511-node binary tree of cons-like
cells is built in the heap, then summed by a recursive function using
JSR/RET and stack spills — return-address-stack pressure and pointer
chasing down the tree.
"""

DESCRIPTION = "recursive cons-tree evaluation with JSR/RET recursion (130.li)"

SOURCE = """
; li95-like kernel
    .data
pool:     .space 12264           ; 511 nodes x 24 (value, left, right)
checksum: .quad 0
    .text
main:
    ; build a complete binary tree: node i children at 2i+1, 2i+2
    lda   r1, 0(zero)            ; node index
    lda   r2, pool
    lda   r3, 2718(zero)         ; LCG
build:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    and   r3, #1023, r4          ; node value
    mul   r1, #24, r5
    add   r2, r5, r6             ; this node's address
    stq   r4, 0(r6)
    ; children if 2i+2 < 511
    add   r1, r1, r7             ; 2i
    add   r7, #2, r8             ; 2i+2
    cmplt r8, #511, r9
    beq   r9, leaf
    add   r7, #1, r10            ; 2i+1
    mul   r10, #24, r11
    add   r2, r11, r11
    stq   r11, 8(r6)             ; left pointer
    mul   r8, #24, r12
    add   r2, r12, r12
    stq   r12, 16(r6)            ; right pointer
    br    built
leaf:
    stq   zero, 8(r6)
    stq   zero, 16(r6)
built:
    add   r1, #1, r1
    cmplt r1, #511, r9
    bne   r9, build

    ; sum the tree twice (warm and hot pass)
    lda   r22, 0(zero)
    mov   r2, r16
    jsr   tree_sum
    add   r22, r17, r22
    mov   r2, r16
    jsr   tree_sum
    add   r22, r17, r22
    stq   r22, checksum
    halt

; r16 = node, returns sum in r17; clobbers r18, r19
tree_sum:
    lda   sp, -24(sp)
    stq   ra, 0(sp)
    stq   r16, 8(sp)
    ldq   r18, 8(r16)            ; left child
    beq   r18, leaf_case
    mov   r18, r16
    jsr   tree_sum               ; sum(left)
    stq   r17, 16(sp)
    ldq   r16, 8(sp)
    ldq   r16, 16(r16)           ; right child
    jsr   tree_sum               ; sum(right)
    ldq   r19, 16(sp)
    add   r17, r19, r17
    ldq   r16, 8(sp)
    ldq   r19, 0(r16)            ; own value
    add   r17, r19, r17
    br    unwind
leaf_case:
    ldq   r17, 0(r16)
unwind:
    ldq   ra, 0(sp)
    lda   sp, 24(sp)
    ret
"""
