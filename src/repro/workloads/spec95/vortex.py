"""vortex: object-database transactions — validate, copy, update records.

Mirrors 147.vortex's record traffic: 256 fixed-size 64-byte records; each
transaction selects a pseudo-random record, bounds-checks a header field,
copies the record into a working buffer (straight-line load/store runs),
and commits an updated field.  Memory-bandwidth heavy with validation
branches.
"""

DESCRIPTION = "object-database record validate/copy/update transactions (147.vortex)"

SOURCE = """
; vortex95-like kernel
    .data
records:  .space 16384           ; 256 records x 64 bytes
work:     .space 64
checksum: .quad 0
    .text
main:
    lda   r1, records
    lda   r2, 2048(zero)         ; 2048 quads
    lda   r3, 8086(zero)
fill:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    and   r3, #65535, r4
    stq   r4, 0(r1)
    lda   r1, 8(r1)
    sub   r2, #1, r2
    bgt   r2, fill

    lda   r20, records
    lda   r21, work
    lda   r22, 0(zero)           ; committed count
    lda   r2, 1024(zero)         ; transactions
    lda   r3, 4711(zero)         ; LCG
txn:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    srl   r3, #2, r4
    and   r4, #255, r4           ; record number
    sll   r4, #6, r5
    add   r20, r5, r6            ; record address
    ldq   r7, 0(r6)              ; header field
    cmpult r7, #49152, r8        ; bounds check
    beq   r8, reject
    ; copy the record to the working buffer
    ldq   r9, 8(r6)
    ldq   r10, 16(r6)
    ldq   r11, 24(r6)
    ldq   r12, 32(r6)
    ldq   r13, 40(r6)
    ldq   r14, 48(r6)
    ldq   r15, 56(r6)
    stq   r7, 0(r21)
    stq   r9, 8(r21)
    stq   r10, 16(r21)
    stq   r11, 24(r21)
    stq   r12, 32(r21)
    stq   r13, 40(r21)
    stq   r14, 48(r21)
    stq   r15, 56(r21)
    ; commit an updated header
    add   r7, #1, r7
    stq   r7, 0(r6)
    add   r22, #1, r22
reject:
    sub   r2, #1, r2
    bgt   r2, txn

    stq   r22, checksum
    halt
"""
