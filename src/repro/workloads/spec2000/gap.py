"""gap: multi-precision integer addition — the serial carry chain.

Mirrors 254.gap's bignum kernels: 128-digit (64-bit limb) numbers added
limb by limb with explicit carry propagation.  The carry makes each limb
depend on the previous one — a long serial add chain, the best case for
1-cycle redundant binary adders over 2-cycle pipelined ones.
"""

DESCRIPTION = "128-limb bignum addition with serial carry chains (254.gap)"

SOURCE = """
; gap-like kernel
    .data
biga:     .space 1024            ; 128 limbs
bigb:     .space 1024
checksum: .quad 0
    .text
main:
    ; initialize both numbers with large limbs (to force real carries)
    lda   r1, biga
    lda   r2, bigb
    lda   r4, 128(zero)
    lda   r3, 90210(zero)
fill:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    stq   r3, 0(r1)
    mul   r3, #25173, r3
    add   r3, #13849, r3
    stq   r3, 0(r2)
    lda   r1, 8(r1)
    lda   r2, 8(r2)
    sub   r4, #1, r4
    bgt   r4, fill

    lda   r20, 24(zero)          ; passes: a += b, 24 times
pass:
    lda   r1, biga
    lda   r2, bigb
    lda   r4, 128(zero)
    lda   r5, 0(zero)            ; carry in
limb:
    ldq   r6, 0(r1)
    ldq   r7, 0(r2)
    add   r6, r7, r8             ; partial sum
    cmpult r8, r6, r9            ; carry out of the partial
    add   r8, r5, r10            ; + incoming carry
    cmpult r10, r8, r11          ; carry out of the carry add
    bis   r9, r11, r5            ; next carry
    stq   r10, 0(r1)
    lda   r1, 8(r1)
    lda   r2, 8(r2)
    sub   r4, #1, r4
    bgt   r4, limb
    sub   r20, #1, r20
    bgt   r20, pass

    ; checksum: the top limb
    lda   r1, biga
    ldq   r2, 1016(r1)
    stq   r2, checksum
    halt
"""
