"""gzip: LZ77 sliding-window match finding.

Mirrors 164.gzip's deflate inner loop: hash the 2-byte prefix at each
position, look up the most recent earlier occurrence, extend the match
byte by byte (data-dependent loop length), and update the head table.
Byte extraction everywhere; the match-extension branch is hard to
predict.
"""

DESCRIPTION = "LZ77 hash-head match finding with byte-wise extension (164.gzip)"

SOURCE = """
; gzip-like kernel
    .data
input:    .space 1032            ; 1024 bytes + slack for match probes
head:     .space 2048            ; 256 hash heads x 8 (position + 1; 0 = none)
checksum: .quad 0
    .text
main:
    lda   r1, input
    lda   r2, 129(zero)          ; fill 1032 bytes
    lda   r3, 77345(zero)
fill:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    and   r3, #168430090, r4     ; sparse byte alphabet -> real matches
    stq   r4, 0(r1)
    lda   r1, 8(r1)
    sub   r2, #1, r2
    bgt   r2, fill

    lda   r20, input
    lda   r21, head
    lda   r6, 0(zero)            ; position
    lda   r22, 0(zero)           ; total matched bytes
pos:
    ; load byte pair at the current position
    bic   r6, #7, r9
    add   r20, r9, r8
    ldq   r8, 0(r8)
    and   r6, #7, r9
    extb  r8, r9, r10            ; b0
    add   r6, #1, r11
    bic   r11, #7, r9
    add   r20, r9, r8
    ldq   r8, 0(r8)
    and   r11, #7, r9
    extb  r8, r9, r12            ; b1
    ; hash and head lookup
    sll   r10, #4, r13
    xor   r13, r12, r13
    and   r13, #255, r13
    s8add r13, r21, r14
    ldq   r15, 0(r14)            ; previous position + 1
    add   r6, #1, r16
    stq   r16, 0(r14)            ; update head
    beq   r15, nomatch
    ; extend the match up to 4 bytes
    sub   r15, #1, r15           ; candidate position
    lda   r17, 0(zero)           ; match length
extend:
    add   r15, r17, r9
    bic   r9, #7, r5
    add   r20, r5, r8
    ldq   r8, 0(r8)
    and   r9, #7, r5
    extb  r8, r5, r18            ; candidate byte
    add   r6, r17, r9
    bic   r9, #7, r5
    add   r20, r5, r8
    ldq   r8, 0(r8)
    and   r9, #7, r5
    extb  r8, r5, r19            ; current byte
    cmpeq r18, r19, r5
    beq   r5, extended
    add   r17, #1, r17
    cmplt r17, #4, r5
    bne   r5, extend
extended:
    add   r22, r17, r22
nomatch:
    add   r6, #1, r6
    cmplt r6, #1024, r5
    bne   r5, pos

    stq   r22, checksum
    halt
"""
