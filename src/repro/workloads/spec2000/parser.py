"""parser: dictionary word lookup by binary search.

Mirrors 197.parser's dictionary probing: a sorted 256-entry dictionary is
binary-searched for each of 320 query tokens.  Every comparison branch is
essentially unpredictable (it depends on the random query), making this
the most branch-hostile kernel in the suite.
"""

DESCRIPTION = "binary search over a sorted dictionary, branch-hostile (197.parser)"

SOURCE = """
; parser-like kernel
    .data
dict:     .space 2048            ; 256 sorted keys
checksum: .quad 0
    .text
main:
    ; strictly increasing keys: key[i] = 16*i + jitter(0..7)
    lda   r1, dict
    lda   r2, 0(zero)            ; i
    lda   r3, 55221(zero)
builddict:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    and   r3, #7, r4
    sll   r2, #4, r5
    add   r5, r4, r5
    stq   r5, 0(r1)
    lda   r1, 8(r1)
    add   r2, #1, r2
    cmplt r2, #256, r6
    bne   r6, builddict

    lda   r20, dict
    lda   r21, 0(zero)           ; found count
    lda   r2, 320(zero)          ; queries
query:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    srl   r3, #5, r4
    and   r4, #4095, r4          ; token in [0, 4096)
    lda   r5, 0(zero)            ; lo
    lda   r6, 256(zero)          ; hi
search:
    sub   r6, r5, r7
    cmple r7, #1, r8
    bne   r8, done
    srl   r7, #1, r9             ; mid = lo + (hi - lo)/2
    add   r5, r9, r9             ; mid
    s8add r9, r20, r10
    ldq   r11, 0(r10)            ; dict[mid]
    cmple r11, r4, r12
    beq   r12, golow
    mov   r9, r5                 ; lo = mid
    br    search
golow:
    mov   r9, r6                 ; hi = mid
    br    search
done:
    s8add r5, r20, r10
    ldq   r11, 0(r10)
    cmpeq r11, r4, r12
    add   r21, r12, r21
    sub   r2, #1, r2
    bgt   r2, query

    stq   r21, checksum
    halt
"""
