"""SPECint2000-like benchmark kernels (see DESIGN.md §2 for the substitution)."""
