"""vortex (SPECint2000): smaller records, heavier validation.

A variant of the 147.vortex kernel matching 255.vortex's profile: 512
records of 32 bytes, three-field validation (two compares and a parity
test) before each commit, and an index indirection table in front of the
record store (one more dependent load per transaction).
"""

DESCRIPTION = "indexed record transactions with multi-field validation (255.vortex)"

SOURCE = """
; vortex2000-like kernel
    .data
index:    .space 4096            ; 512 slots mapping txn -> record number
records:  .space 16384           ; 512 records x 32
work:     .space 32
checksum: .quad 0
    .text
main:
    lda   r1, index
    lda   r2, 512(zero)
    lda   r3, 25525(zero)
genidx:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    srl   r3, #4, r4
    and   r4, #511, r4
    stq   r4, 0(r1)
    lda   r1, 8(r1)
    sub   r2, #1, r2
    bgt   r2, genidx

    lda   r1, records
    lda   r2, 2048(zero)
genrec:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    and   r3, #65535, r4
    stq   r4, 0(r1)
    lda   r1, 8(r1)
    sub   r2, #1, r2
    bgt   r2, genrec

    lda   r20, index
    lda   r21, records
    lda   r22, work
    lda   r23, 0(zero)           ; committed
    lda   r2, 1024(zero)         ; transactions
    lda   r6, 0(zero)            ; transaction number
txn:
    and   r6, #511, r7
    s8add r7, r20, r8
    ldq   r9, 0(r8)              ; record number via the index
    sll   r9, #5, r10
    add   r21, r10, r11          ; record address
    ldq   r12, 0(r11)            ; field 0
    ldq   r13, 8(r11)            ; field 1
    ; validation: f0 in bounds, f1 >= f0/2, f0 even
    cmpult r12, #61440, r14
    beq   r14, bad
    srl   r12, #1, r15
    cmpule r15, r13, r16
    beq   r16, bad
    blbs  r12, bad
    ; commit: copy and bump
    ldq   r17, 16(r11)
    ldq   r18, 24(r11)
    stq   r12, 0(r22)
    stq   r13, 8(r22)
    stq   r17, 16(r22)
    stq   r18, 24(r22)
    add   r12, #2, r12
    stq   r12, 0(r11)
    add   r23, #1, r23
bad:
    add   r6, #1, r6
    sub   r2, #1, r2
    bgt   r2, txn

    stq   r23, checksum
    halt
"""
