"""bzip2: move-to-front coding of a skewed symbol stream.

Mirrors 256.bzip2's MTF stage: for each input symbol, scan the recency
list for its position (serial, data-dependent loop), shift the preceding
entries down, move the symbol to the front, and emit the position.  The
scan length depends on symbol skew, so branch behaviour is irregular.
"""

DESCRIPTION = "move-to-front recency-list coding with data-dependent scans (256.bzip2)"

SOURCE = """
; bzip2-like kernel
    .data
mtf:      .space 256             ; 32-entry recency list, one quad each
syms:     .space 2048            ; 256 symbols x 8
checksum: .quad 0
    .text
main:
    ; recency list starts as identity
    lda   r1, 0(zero)
    lda   r2, mtf
ident:
    s8add r1, r2, r3
    stq   r1, 0(r3)
    add   r1, #1, r1
    cmplt r1, #32, r4
    bne   r4, ident

    ; skewed symbols: AND of two 5-bit LCG fields biases toward 0
    lda   r1, syms
    lda   r5, 256(zero)
    lda   r3, 6502(zero)
gen:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    srl   r3, #3, r6
    and   r6, #31, r6
    srl   r3, #9, r7
    and   r7, #31, r7
    and   r6, r7, r6
    stq   r6, 0(r1)
    lda   r1, 8(r1)
    sub   r5, #1, r5
    bgt   r5, gen

    lda   r1, syms
    lda   r5, 256(zero)
    lda   r20, mtf
    lda   r21, 0(zero)           ; output accumulator
encode:
    ldq   r6, 0(r1)              ; symbol
    ; find its position in the recency list
    lda   r7, 0(zero)
scan:
    s8add r7, r20, r8
    ldq   r9, 0(r8)
    cmpeq r9, r6, r10
    bne   r10, foundpos
    add   r7, #1, r7
    br    scan
foundpos:
    add   r21, r7, r21           ; emit the position
    ; shift entries 0..pos-1 down one slot (back to front)
    beq   r7, placed
shift:
    sub   r7, #1, r11
    s8add r11, r20, r12
    ldq   r13, 0(r12)
    s8add r7, r20, r14
    stq   r13, 0(r14)
    mov   r11, r7
    bgt   r7, shift
placed:
    stq   r6, 0(r20)             ; symbol moves to the front
    lda   r1, 8(r1)
    sub   r5, #1, r5
    bgt   r5, encode

    stq   r21, checksum
    halt
"""
