"""gcc (SPECint2000): symbol tables with chain surgery.

Like the 126.gcc kernel but with the CSE-style table maintenance of
176.gcc: denser buckets (32 buckets for 320 symbols, so chains are
longer), a lookup storm, and a dead-symbol sweep that unlinks every node
with an odd key — pointer rewrites through the chain.
"""

DESCRIPTION = "hash chains with lookup storm and unlink sweep (176.gcc)"

SOURCE = """
; gcc2000-like kernel
    .data
buckets:  .space 256             ; 32 buckets x 8
pool:     .space 8192            ; 512 nodes x 16 (key, next)
checksum: .quad 0
    .text
main:
    lda   r1, 0(zero)
    lda   r2, pool
    lda   r3, 31337(zero)
    lda   r4, buckets
insert:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    srl   r3, #3, r5
    and   r5, #2047, r5          ; key
    and   r5, #31, r6            ; bucket
    s8add r6, r4, r7
    ldq   r8, 0(r7)
    stq   r5, 0(r2)
    stq   r8, 8(r2)
    stq   r2, 0(r7)
    lda   r2, 16(r2)
    add   r1, #1, r1
    cmplt r1, #320, r9
    bne   r9, insert

    ; lookup storm
    lda   r1, 0(zero)
    lda   r10, 0(zero)
    lda   r11, 2001(zero)
lookup:
    mul   r11, #25173, r11
    add   r11, #13849, r11
    srl   r11, #3, r5
    and   r5, #2047, r5
    and   r5, #31, r6
    s8add r6, r4, r7
    ldq   r12, 0(r7)
walk:
    beq   r12, miss
    ldq   r13, 0(r12)
    cmpeq r13, r5, r14
    bne   r14, found
    ldq   r12, 8(r12)
    br    walk
found:
    add   r10, #1, r10
miss:
    add   r1, #1, r1
    cmplt r1, #768, r9
    bne   r9, lookup

    ; sweep: unlink nodes with odd keys from every bucket
    lda   r1, 0(zero)            ; bucket index
sweep:
    s8add r1, r4, r7             ; address of the link to rewrite
    ldq   r12, 0(r7)             ; candidate node
prune:
    beq   r12, nextbucket
    ldq   r13, 0(r12)            ; key
    blbs  r13, unlink
    lda   r7, 8(r12)             ; the link now lives in this node
    ldq   r12, 8(r12)
    br    prune
unlink:
    ldq   r14, 8(r12)            ; successor
    stq   r14, 0(r7)             ; link skips the dead node
    add   r10, #1, r10
    mov   r14, r12
    br    prune
nextbucket:
    add   r1, #1, r1
    cmplt r1, #32, r9
    bne   r9, sweep

    stq   r10, checksum
    halt
"""
