"""twolf: simulated-annealing placement moves.

Mirrors 300.twolf's inner loop: pick two cells, compute the wirelength
delta of swapping them (absolute differences via conditional negation),
accept improving moves and a pseudo-random fraction of worsening ones,
and commit accepted swaps back to memory.
"""

DESCRIPTION = "annealing swap evaluation with |dx|+|dy| deltas and cmov (300.twolf)"

SOURCE = """
; twolf-like kernel
    .data
cells:    .space 4096            ; 256 cells x 16 (x, y)
checksum: .quad 0
    .text
main:
    lda   r1, cells
    lda   r2, 256(zero)
    lda   r3, 300300(zero)
gen:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    and   r3, #1023, r4
    stq   r4, 0(r1)              ; x
    srl   r3, #10, r5
    and   r5, #1023, r5
    stq   r5, 8(r1)              ; y
    lda   r1, 16(r1)
    sub   r2, #1, r2
    bgt   r2, gen

    lda   r20, cells
    lda   r21, 0(zero)           ; accepted moves
    lda   r2, 1024(zero)         ; iterations
move:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    srl   r3, #3, r4
    and   r4, #255, r4           ; cell a
    srl   r3, #12, r5
    and   r5, #255, r5           ; cell b
    sll   r4, #4, r6
    add   r20, r6, r6            ; &cells[a]
    sll   r5, #4, r7
    add   r20, r7, r7            ; &cells[b]
    ldq   r8, 0(r6)              ; ax
    ldq   r9, 8(r6)              ; ay
    ldq   r10, 0(r7)             ; bx
    ldq   r11, 8(r7)             ; by
    ; delta = |ax-bx| + |ay-by|
    sub   r8, r10, r12
    sub   zero, r12, r13
    cmovlt r12, r13, r12         ; |dx|
    sub   r9, r11, r14
    sub   zero, r14, r15
    cmovlt r14, r15, r14         ; |dy|
    add   r12, r14, r16          ; move cost
    ; accept if cost below a cooling threshold or random bit set
    srl   r3, #20, r17
    and   r17, #1, r17
    cmplt r16, #512, r18
    bis   r17, r18, r18
    beq   r18, rejectmove
    ; commit the swap
    stq   r10, 0(r6)
    stq   r11, 8(r6)
    stq   r8, 0(r7)
    stq   r9, 8(r7)
    add   r21, #1, r21
rejectmove:
    sub   r2, #1, r2
    bgt   r2, move

    stq   r21, checksum
    halt
"""
