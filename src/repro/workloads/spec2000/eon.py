"""eon: fixed-point ray intersection tests — dot products and minima.

Mirrors 252.eon's geometric inner loops (in fixed point, as our ISA has no
floating point unit): per ray, a 3-component dot product against a stored
normal (multiplies feeding an add tree), a scale by shift, and a
running-minimum update via compare + conditional move.  FADD-class
operations accumulate the image statistics, exercising the Table 3 fp
latency rows.
"""

DESCRIPTION = "fixed-point dot products with cmov running minima (252.eon)"

SOURCE = """
; eon-like kernel
    .data
normals:  .space 18432           ; 768 triangles x 3 components x 8
checksum: .quad 0
    .text
main:
    lda   r1, normals
    lda   r2, 2304(zero)         ; quads
    lda   r3, 1337(zero)
fill:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    and   r3, #4095, r4
    sub   r4, #2048, r4          ; signed components
    stq   r4, 0(r1)
    lda   r1, 8(r1)
    sub   r2, #1, r2
    bgt   r2, fill

    lda   r20, normals
    lda   r2, 768(zero)          ; rays
    lda   r21, 32767(zero)       ; best (min) distance so far
    lda   r22, 0(zero)           ; fp accumulator
    lda   r5, 100(zero)          ; ray direction x
    lda   r6, -57(zero)          ; ray direction y
    lda   r7, 23(zero)           ; ray direction z
    lda   r23, 0(zero)           ; triangle index
ray:
    mul   r23, #24, r8
    add   r20, r8, r8            ; normal address
    ldq   r9, 0(r8)
    ldq   r10, 8(r8)
    ldq   r11, 16(r8)
    mul   r9, r5, r12
    mul   r10, r6, r13
    mul   r11, r7, r14
    add   r12, r13, r15
    add   r15, r14, r15          ; dot product
    sra   r15, #6, r15           ; fixed-point scale
    ; distance = |dot| via conditional negate
    sub   zero, r15, r16
    cmovlt r15, r16, r15
    ; track the minimum
    cmplt r15, r21, r17
    cmovne r17, r15, r21
    ; fp-class accumulation of the shading term
    fadd  r22, r15, r22
    add   r23, #1, r23
    and   r23, #767, r23
    sub   r2, #1, r2
    bgt   r2, ray

    add   r21, r22, r24
    stq   r24, checksum
    halt
"""
