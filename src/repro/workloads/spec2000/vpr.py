"""vpr: greedy maze routing over a cost grid.

Mirrors 175.vpr's router: from a current grid cell, examine the four
neighbours' congestion costs plus a Manhattan-distance heuristic to the
sink, step to the cheapest (compare/cmov selection tree), bump the chosen
cell's congestion, and repeat.  Grid loads, abs-difference arithmetic,
and a serially dependent position update.
"""

DESCRIPTION = "greedy grid routing with cmov minimum selection (175.vpr)"

SOURCE = """
; vpr-like kernel
    .data
grid:     .space 8192            ; 32x32 cells x 8 (congestion cost)
checksum: .quad 0
    .text
main:
    lda   r1, grid
    lda   r2, 1024(zero)
    lda   r3, 175175(zero)
gen:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    and   r3, #63, r4
    stq   r4, 0(r1)
    lda   r1, 8(r1)
    sub   r2, #1, r2
    bgt   r2, gen

    lda   r20, grid
    lda   r5, 1(zero)            ; x
    lda   r6, 1(zero)            ; y
    lda   r7, 30(zero)           ; sink x
    lda   r8, 30(zero)           ; sink y
    lda   r21, 0(zero)           ; accumulated route cost
    lda   r2, 600(zero)          ; routing steps
step:
    ; candidate positions: E, W, S, N (wrapped into the interior 1..30)
    add   r5, #1, r10
    and   r10, #31, r10
    sub   r5, #1, r11
    and   r11, #31, r11
    add   r6, #1, r12
    and   r12, #31, r12
    sub   r6, #1, r13
    and   r13, #31, r13
    ; cost(x, y) = grid[y*32+x] + |x-sinkx| + |y-sinky|
    ; east
    sll   r6, #5, r14
    add   r14, r10, r14
    s8add r14, r20, r14
    ldq   r14, 0(r14)
    sub   r10, r7, r15
    sub   zero, r15, r16
    cmovlt r15, r16, r15
    add   r14, r15, r14
    sub   r6, r8, r15
    sub   zero, r15, r16
    cmovlt r15, r16, r15
    add   r14, r15, r14          ; east cost
    ; west
    sll   r6, #5, r17
    add   r17, r11, r17
    s8add r17, r20, r17
    ldq   r17, 0(r17)
    sub   r11, r7, r15
    sub   zero, r15, r16
    cmovlt r15, r16, r15
    add   r17, r15, r17
    sub   r6, r8, r15
    sub   zero, r15, r16
    cmovlt r15, r16, r15
    add   r17, r15, r17          ; west cost
    ; south
    sll   r12, #5, r18
    add   r18, r5, r18
    s8add r18, r20, r18
    ldq   r18, 0(r18)
    sub   r5, r7, r15
    sub   zero, r15, r16
    cmovlt r15, r16, r15
    add   r18, r15, r18
    sub   r12, r8, r15
    sub   zero, r15, r16
    cmovlt r15, r16, r15
    add   r18, r15, r18          ; south cost
    ; north
    sll   r13, #5, r19
    add   r19, r5, r19
    s8add r19, r20, r19
    ldq   r19, 0(r19)
    sub   r5, r7, r15
    sub   zero, r15, r16
    cmovlt r15, r16, r15
    add   r19, r15, r19
    sub   r13, r8, r15
    sub   zero, r15, r16
    cmovlt r15, r16, r15
    add   r19, r15, r19          ; north cost
    ; select the minimum: start with east, fold in the others
    mov   r14, r22               ; best cost
    mov   r10, r23               ; best x
    mov   r6, r24                ; best y
    cmplt r17, r22, r15
    cmovne r15, r17, r22
    cmovne r15, r11, r23
    cmovne r15, r6, r24
    cmplt r18, r22, r15
    cmovne r15, r18, r22
    cmovne r15, r5, r23
    cmovne r15, r12, r24
    cmplt r19, r22, r15
    cmovne r15, r19, r22
    cmovne r15, r5, r23
    cmovne r15, r13, r24
    ; move there, pay and raise its congestion
    mov   r23, r5
    mov   r24, r6
    add   r21, r22, r21
    sll   r6, #5, r14
    add   r14, r5, r14
    s8add r14, r20, r14
    ldq   r15, 0(r14)
    add   r15, #2, r15
    stq   r15, 0(r14)
    sub   r2, #1, r2
    bgt   r2, step

    stq   r21, checksum
    halt
"""
