"""crafty: bitboard manipulation — population counts and LSB extraction.

Mirrors 186.crafty's move generation: combine 64-bit piece bitboards with
logicals, score occupancy with CTPOP, and walk set bits with the classic
CTTZ / clear-lowest-bit loop.  Dominated by the Table 1 "Other" class
(logicals, counts) — the workload where redundant binary helps least.
"""

DESCRIPTION = "bitboard logicals, CTPOP scoring, CTTZ set-bit walks (186.crafty)"

SOURCE = """
; crafty-like kernel
    .data
checksum: .quad 0
    .text
main:
    lda   r3, 9731(zero)         ; LCG
    lda   r2, 400(zero)          ; positions to evaluate
    lda   r21, 0(zero)           ; score
position:
    ; two pseudo-random bitboards
    mul   r3, #25173, r3
    add   r3, #13849, r3
    mov   r3, r5
    mul   r3, #25173, r3
    add   r3, #13849, r3
    mov   r3, r6
    ; occupancy and attack masks
    bis   r5, r6, r7             ; occupied
    and   r5, r6, r8             ; contested
    xor   r5, r6, r9             ; exclusive
    sll   r8, #1, r10            ; attack spread (digit shift)
    bic   r7, r10, r7
    ; material score
    ctpop r7, r11
    add   r21, r11, r21
    ctpop r8, r11
    s4add r11, r21, r21
    ; walk the set bits of the 16-bit windowed exclusive mask
    and   r9, #65535, r12
bits:
    beq   r12, donebits
    cttz  r12, r13               ; index of lowest set bit
    add   r21, r13, r21
    sub   r12, #1, r14           ; clear the lowest set bit:
    and   r12, r14, r12          ;   b &= b - 1
    br    bits
donebits:
    sub   r2, #1, r2
    bgt   r2, position

    stq   r21, checksum
    halt
"""
