"""mcf: network-simplex arc scanning — reduced costs and sparse updates.

Mirrors 181.mcf's pricing loop: for every arc, load its cost and its two
node indices, chase the node potentials through a second level of loads
(load-dependent loads), compute the reduced cost, and conditionally pump
flow and adjust a potential.  Memory-latency bound with mispredictable
sign branches.
"""

DESCRIPTION = "arc pricing with load-dependent potential lookups (181.mcf)"

SOURCE = """
; mcf-like kernel
    .data
arcs:     .space 16384           ; 512 arcs x 32 (cost, flow, src, dst)
pots:     .space 512             ; 64 node potentials
checksum: .quad 0
    .text
main:
    ; arcs with random costs and endpoints
    lda   r1, arcs
    lda   r2, 512(zero)
    lda   r3, 18111(zero)
genarc:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    and   r3, #1023, r4
    sub   r4, #512, r4           ; signed cost
    stq   r4, 0(r1)
    stq   zero, 8(r1)            ; flow = 0
    srl   r3, #11, r5
    and   r5, #63, r5
    stq   r5, 16(r1)             ; source node
    srl   r3, #17, r6
    and   r6, #63, r6
    stq   r6, 24(r1)             ; destination node
    lda   r1, 32(r1)
    sub   r2, #1, r2
    bgt   r2, genarc

    ; potentials
    lda   r1, pots
    lda   r2, 64(zero)
potfill:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    and   r3, #255, r4
    stq   r4, 0(r1)
    lda   r1, 8(r1)
    sub   r2, #1, r2
    bgt   r2, potfill

    lda   r20, arcs
    lda   r21, pots
    lda   r22, 0(zero)           ; pumped flow total
    lda   r23, 3(zero)           ; passes
pass:
    mov   r20, r1                ; arc cursor
    lda   r2, 512(zero)
arc:
    ldq   r4, 0(r1)              ; cost
    ldq   r5, 16(r1)             ; source index
    ldq   r6, 24(r1)             ; destination index
    s8add r5, r21, r7
    ldq   r7, 0(r7)              ; pot[src]   (load-dependent load)
    s8add r6, r21, r8
    ldq   r8, 0(r8)              ; pot[dst]
    sub   r4, r7, r9
    add   r9, r8, r9             ; reduced cost
    bge   r9, nopump
    ; negative reduced cost: pump one unit and raise the dst potential
    ldq   r10, 8(r1)
    add   r10, #1, r10
    stq   r10, 8(r1)
    s8add r6, r21, r11
    ldq   r12, 0(r11)
    add   r12, #1, r12
    stq   r12, 0(r11)
    add   r22, #1, r22
nopump:
    lda   r1, 32(r1)
    sub   r2, #1, r2
    bgt   r2, arc
    sub   r23, #1, r23
    bgt   r23, pass

    stq   r22, checksum
    halt
"""
