"""perlbmk: regular-expression matching as a table-driven DFA.

Mirrors 253.perlbmk's regex engines: a 32-state x 16-symbol transition
table drives 2500 input characters through the automaton; accepting
states bump a counter.  The next-state load depends on the previous one —
a serial load + address-arithmetic chain.
"""

DESCRIPTION = "table-driven DFA over a character stream (253.perlbmk)"

SOURCE = """
; perlbmk-like kernel
    .data
dfa:      .space 4096            ; 32 states x 16 symbols x 8
text:     .space 2504
checksum: .quad 0
    .text
main:
    ; transition table: pseudo-random next states, state 0 marked accepting
    lda   r1, dfa
    lda   r2, 512(zero)
    lda   r3, 60622(zero)
gentab:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    srl   r3, #7, r4
    and   r4, #31, r4            ; next state
    stq   r4, 0(r1)
    lda   r1, 8(r1)
    sub   r2, #1, r2
    bgt   r2, gentab

    lda   r1, text
    lda   r2, 313(zero)          ; 2504 bytes
    lda   r3, 424242(zero)
gentext:
    mul   r3, #25173, r3
    add   r3, #13849, r3
    stq   r3, 0(r1)
    lda   r1, 8(r1)
    sub   r2, #1, r2
    bgt   r2, gentext

    lda   r20, dfa
    lda   r21, text
    lda   r5, 0(zero)            ; state
    lda   r6, 0(zero)            ; char index
    lda   r22, 0(zero)           ; accept count
step:
    bic   r6, #7, r9
    add   r21, r9, r8
    ldq   r8, 0(r8)
    and   r6, #7, r9
    extb  r8, r9, r10            ; character
    and   r10, #15, r10          ; symbol class
    ; index = (state*16 + symbol) * 8
    sll   r5, #4, r11
    add   r11, r10, r11
    s8add r11, r20, r12
    ldq   r5, 0(r12)             ; next state (serial dependence)
    cmpeq r5, #0, r13
    add   r22, r13, r22          ; accepting state counter
    add   r6, #1, r6
    cmplt r6, #2500, r14
    bne   r14, step

    stq   r22, checksum
    halt
"""
