"""Synthetic workload generators with controlled dependence structure.

These are not SPEC stand-ins; they exist to probe single mechanisms:

* :func:`dependent_chain_program` — a serial chain of adds: the pure
  latency-bound case where redundant binary adders shine most.
* :func:`independent_chains_program` — many parallel chains: the
  bandwidth-bound case where the Baseline's pipelined adders keep up.
* :func:`conversion_chain_program` — alternating add/logical on the
  critical path: every other edge needs an RB -> TC format conversion.
* :func:`pointer_chase_program` — a linked-list walk: memory-latency
  bound, insensitive to ALU latency.
"""

from __future__ import annotations

from repro.isa.assembler import assemble
from repro.isa.program import Program


def dependent_chain_program(iterations: int = 2000, chain_length: int = 4) -> Program:
    """One serial add chain of ``chain_length`` per loop iteration."""
    if iterations <= 0 or chain_length <= 0:
        raise ValueError("iterations and chain_length must be positive")
    body = "\n".join(
        "    add   r2, #1, r2" for _ in range(chain_length)
    )
    source = f"""
    .text
main:
    lda   r2, 0(zero)
    lda   r3, {iterations}(zero)
loop:
{body}
    sub   r3, #1, r3
    bgt   r3, loop
    halt
"""
    return assemble(source, f"chain{chain_length}x{iterations}")


def independent_chains_program(iterations: int = 2000, chains: int = 6) -> Program:
    """``chains`` independent accumulators per iteration (high ILP)."""
    if iterations <= 0 or not 1 <= chains <= 20:
        raise ValueError("iterations positive; chains in [1, 20]")
    regs = [f"r{4 + i}" for i in range(chains)]
    setup = "\n".join(f"    lda   {r}, {i}(zero)" for i, r in enumerate(regs))
    body = "\n".join(f"    add   {r}, #1, {r}" for r in regs)
    source = f"""
    .text
main:
{setup}
    lda   r3, {iterations}(zero)
loop:
{body}
    sub   r3, #1, r3
    bgt   r3, loop
    halt
"""
    return assemble(source, f"ilp{chains}x{iterations}")


def conversion_chain_program(iterations: int = 2000) -> Program:
    """A serial chain alternating RB-producing adds and TC-only logicals."""
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    source = f"""
    .text
main:
    lda   r2, 1(zero)
    lda   r3, {iterations}(zero)
loop:
    add   r2, #3, r2
    and   r2, #8191, r2
    add   r2, #5, r2
    xor   r2, #85, r2
    sub   r3, #1, r3
    bgt   r3, loop
    halt
"""
    return assemble(source, f"convchain{iterations}")


def pointer_chase_program(nodes: int = 512, laps: int = 20) -> Program:
    """Walk a ring of linked nodes ``laps`` times (memory-latency bound).

    The ring is built with a stride that defeats spatial locality in the
    8 KB data cache, so most hops hit the L2.
    """
    if not 2 <= nodes <= 4096 or laps <= 0:
        raise ValueError("nodes in [2, 4096]; laps positive")
    stride = 136  # not a multiple of the 64B line: spreads over sets
    source = f"""
    .data
ring:   .space {nodes * stride + 8}
    .text
main:
    ; build the ring: node i at ring + (i * 7919 % {nodes}) * {stride}
    lda   r1, 0(zero)            ; i
    lda   r2, ring
    lda   r10, 0(zero)           ; prev node address
build:
    mul   r1, #7919, r3
    lda   r4, {nodes}(zero)
loop_mod:
    cmplt r3, r4, r5
    bne   r5, mod_done
    sub   r3, r4, r3
    br    loop_mod
mod_done:
    mul   r3, #{stride}, r6
    add   r2, r6, r7             ; this node's address
    beq   r1, first
    stq   r7, 0(r10)             ; prev->next = this
    br    linked
first:
    mov   r7, r8                 ; remember the head
linked:
    mov   r7, r10
    add   r1, #1, r1
    cmplt r1, #{nodes}, r5
    bne   r5, build
    stq   r8, 0(r10)             ; close the ring

    ; chase it
    lda   r11, {laps}(zero)
    mov   r8, r12
    lda   r13, {nodes}(zero)
chase:
    ldq   r12, 0(r12)
    sub   r13, #1, r13
    bgt   r13, chase
    lda   r13, {nodes}(zero)
    sub   r11, #1, r11
    bgt   r11, chase
    halt
"""
    return assemble(source, f"chase{nodes}x{laps}")
