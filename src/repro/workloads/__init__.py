"""Benchmark kernels standing in for SPECint95 / SPECint2000 (see DESIGN.md §2).

Each workload is a hand-written assembly kernel implementing a real
algorithm reminiscent of the SPEC program it is named after, so dependence
chains, branch behaviour and instruction mix arise organically.  The suite
registry maps names to assembled programs; :mod:`repro.workloads.generators`
provides synthetic kernels with controlled ILP for targeted studies.
"""

from repro.workloads.generators import (
    dependent_chain_program,
    independent_chains_program,
    conversion_chain_program,
    pointer_chase_program,
)
from repro.workloads.suite import (
    Workload,
    all_workloads,
    build,
    get_workload,
    spec95_names,
    spec2000_names,
)

__all__ = [
    "Workload",
    "all_workloads",
    "build",
    "get_workload",
    "spec95_names",
    "spec2000_names",
    "dependent_chain_program",
    "independent_chains_program",
    "conversion_chain_program",
    "pointer_chase_program",
]
