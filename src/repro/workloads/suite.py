"""The workload registry: 8 SPECint95-like and 12 SPECint2000-like kernels.

The paper runs all benchmarks to completion with reduced inputs; these
kernels are likewise sized to complete in tens of thousands of dynamic
instructions (the "modified input sets to reduce simulation time" of
§5.1, taken further because the simulator is written in Python).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from functools import lru_cache

from repro.isa.assembler import assemble
from repro.isa.program import Program

#: (name, module, suite) for every benchmark kernel.
_SPEC95 = [
    "compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "vortex",
]
_SPEC2000 = [
    "bzip2", "crafty", "eon", "gap", "gcc2k", "gzip",
    "mcf", "parser", "perlbmk", "twolf", "vortex2k", "vpr",
]


@dataclass(frozen=True)
class Workload:
    """One registered benchmark kernel."""

    name: str
    suite: str          # "spec95" or "spec2000"
    module: str
    description: str

    def source(self) -> str:
        mod = importlib.import_module(self.module)
        return mod.SOURCE

    def build(self) -> Program:
        return _assemble_cached(self.module, self.name)


@lru_cache(maxsize=None)
def _assemble_cached(module: str, name: str) -> Program:
    mod = importlib.import_module(module)
    return assemble(mod.SOURCE, name)


@lru_cache(maxsize=1)
def _registry() -> dict[str, Workload]:
    registry: dict[str, Workload] = {}
    for suite, names, package in (
        ("spec95", _SPEC95, "repro.workloads.spec95"),
        ("spec2000", _SPEC2000, "repro.workloads.spec2000"),
    ):
        for name in names:
            module = f"{package}.{name}"
            mod = importlib.import_module(module)
            registry[name] = Workload(
                name=name,
                suite=suite,
                module=module,
                description=mod.DESCRIPTION,
            )
    return registry


def all_workloads(suite: str | None = None) -> list[Workload]:
    """Every registered workload, optionally filtered by suite."""
    workloads = list(_registry().values())
    if suite is not None:
        workloads = [w for w in workloads if w.suite == suite]
        if not workloads:
            raise ValueError(f"unknown suite {suite!r}")
    return workloads


def spec95_names() -> list[str]:
    return list(_SPEC95)


def spec2000_names() -> list[str]:
    return list(_SPEC2000)


def get_workload(name: str) -> Workload:
    try:
        return _registry()[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_registry())}"
        ) from None


def build(name: str) -> Program:
    """Assemble (cached) the named workload.

    Names starting with ``fuzz:`` denote deterministic fuzzer-generated
    kernels (``fuzz:<profile>:<seed>``, see :mod:`repro.verify.fuzz`)
    and are regenerated from the name alone — which is what lets a
    process-pool worker simulate one without any registry transfer.
    Names starting with ``fault:`` wrap another workload with one-shot
    fault injection for resilience tests (:mod:`repro.verify.faults`).
    """
    if name.startswith("fuzz:"):
        from repro.verify.fuzz import build_fuzz

        return build_fuzz(name)
    if name.startswith("fault:"):
        from repro.verify.faults import build_fault

        return build_fault(name)
    return get_workload(name).build()
