"""Sum-addressed memory (SAM) decoder (paper §3.6; Heald et al., Lynch et al.).

A conventional cache decoder takes an already-computed index; SAM instead
takes a base and a displacement and, for every word line k, answers
"(base + displacement) mod 2**w == k?" *without* a carry-propagating add.

The per-bit recode: assume the sum equals k.  Then the carry into bit i
must be ``H_i = a_i ^ b_i ^ k_i``, and the carry out of bit i is
``c_i = (a_i & b_i) | ((a_i ^ b_i) & ~k_i)``.  The assumed sum is correct
iff every required carry-in matches the produced carry-out one bit below
(``H_i == c_{i-1}``, with ``c_{-1} == 0``): a constant-depth per-bit check
followed by a log-depth AND tree — no full adder anywhere.

This lets the machines index the data cache directly with a redundant
binary address (treating X+ and X- as the two SAM inputs — a subtraction
is an addition of the complemented component, handled the same way), so
loads avoid the RB -> TC conversion on their critical path.  That is why
Table 3 charges loads a 1-cycle address generation on every machine.
"""

from __future__ import annotations

from repro.circuits.gates import Circuit, GateKind


def sam_match(a: int, b: int, k: int, width: int) -> bool:
    """Reference SAM equality test: does (a + b) mod 2**width == k?

    Pure bit-twiddling (word-level view of the per-bit recode); validated
    against plain addition in the tests and used by the functional cache
    model when indexing with redundant addresses.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    mask = (1 << width) - 1
    a &= mask
    b &= mask
    k &= mask
    required_carry_in = a ^ b ^ k
    carry_out = (a & b) | ((a ^ b) & ~k & mask)
    return required_carry_in == ((carry_out << 1) & mask)


def sam_match3(a: int, b: int, c: int, k: int, width: int) -> bool:
    """The paper's *modified* SAM: three inputs, still no carry propagate.

    Used when the base register is redundant binary and a two's-complement
    displacement must be added: the three addends (X+, the complement of
    X-, and the displacement) are first reduced 3 -> 2 with a carry-save
    stage (per-bit XOR + majority, constant depth — the paper's "circuit
    similar to a carry-save adder" whose cost is at worst a 3-input XOR
    in front of the conventional SAM), then the 2-input equality test runs
    as usual.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    mask = (1 << width) - 1
    a &= mask
    b &= mask
    c &= mask
    sum_bits = a ^ b ^ c
    carry_bits = ((a & b) | (a & c) | (b & c)) << 1
    return sam_match(sum_bits, carry_bits & mask, k, width)


def sam_match_redundant(plus: int, minus: int, displacement: int, k: int, width: int) -> bool:
    """Index check for a redundant-binary address plus a TC displacement.

    The X- component enters as its two's complement (``-X-`` mod 2**width),
    so ``X+ + (-X-) + displacement == k`` is exactly the §3.6 modified-SAM
    equation.
    """
    mask = (1 << width) - 1
    return sam_match3(plus, (-minus) & mask, displacement, k, width)


def build_sam_decoder(index_bits: int, lines: int | None = None) -> Circuit:
    """A SAM decoder over ``index_bits`` with one-hot word-line outputs.

    Inputs: buses ``a`` and ``b`` (base and displacement index fields, or
    the X+ / X- components of a redundant binary address).  Outputs:
    ``line[k]`` for each word line, asserted iff (a + b) mod 2**index_bits
    == k.  The word-line constant k is folded into each slice, so per line
    the cost is one XNOR per bit plus the AND tree.
    """
    if index_bits <= 0:
        raise ValueError(f"index_bits must be positive, got {index_bits}")
    if lines is None:
        lines = 1 << index_bits
    if not 0 < lines <= (1 << index_bits):
        raise ValueError(f"line count {lines} out of range for {index_bits} bits")

    circuit = Circuit(f"sam{index_bits}x{lines}")
    a = circuit.input_bus("a", index_bits)
    b = circuit.input_bus("b", index_bits)

    # Per-bit signals shared by every word line.
    axb = [circuit.xor_(a[i], b[i]) for i in range(index_bits)]
    ab = [circuit.and_(a[i], b[i]) for i in range(index_bits)]
    aob = [circuit.or_(a[i], b[i]) for i in range(index_bits)]
    not_axb = [circuit.not_(x) for x in axb]

    for k in range(lines):
        checks = []
        for i in range(index_bits):
            k_bit = (k >> i) & 1
            # Required carry into bit i: H_i = a_i ^ b_i ^ k_i.
            h = not_axb[i] if k_bit else axb[i]
            if i == 0:
                # No carry enters bit 0, so H_0 must be 0.
                checks.append(circuit.not_(h))
            else:
                checks.append(circuit.gate(GateKind.XNOR, h, carry_prev))
            # Carry out of bit i, with k_i constant:
            #   k_i == 1 -> (a & b);   k_i == 0 -> (a & b) | (a ^ b) == a | b.
            carry_prev = ab[i] if k_bit else aob[i]
        circuit.output(f"line[{k}]", circuit.and_(*checks))
    return circuit
