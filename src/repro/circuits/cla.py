"""Carry-lookahead adder, parallel-prefix (Kogge-Stone) form.

The paper compares RB adders against "conventional 2's complement
carry-lookahead adders" whose "critical path grows logarithmically with
respect to the number of bits" (§2, §3.4).  A Kogge-Stone parallel-prefix
adder is the canonical log-depth member of the carry-lookahead family and
is what we sweep against the constant-depth RB adder.
"""

from __future__ import annotations

from repro.circuits.gates import Circuit, Net


def build_cla_adder(width: int) -> Circuit:
    """An N-bit Kogge-Stone carry-lookahead adder with cin.

    Outputs ``sum[0..N-1]`` and ``cout``.  Depth: one propagate/generate
    level, ceil(log2 N) prefix levels, one final XOR.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    circuit = Circuit(f"cla{width}")
    a = circuit.input_bus("a", width)
    b = circuit.input_bus("b", width)
    cin = circuit.input("cin")

    # Bit-level propagate/generate.  cin is folded into bit 0's generate so
    # the prefix network handles it uniformly.
    propagate: list[Net] = [circuit.xor_(a[i], b[i]) for i in range(width)]
    generate: list[Net] = [circuit.and_(a[i], b[i]) for i in range(width)]
    generate[0] = circuit.or_(generate[0], circuit.and_(propagate[0], cin))

    # Kogge-Stone prefix tree: after the last level, generate[i] is the
    # carry out of bit i.
    group_p = list(propagate)
    group_g = list(generate)
    distance = 1
    while distance < width:
        new_p = list(group_p)
        new_g = list(group_g)
        for i in range(distance, width):
            new_g[i] = circuit.or_(
                group_g[i], circuit.and_(group_p[i], group_g[i - distance])
            )
            new_p[i] = circuit.and_(group_p[i], group_p[i - distance])
        group_p, group_g = new_p, new_g
        distance *= 2

    sums = [circuit.xor_(propagate[0], cin)]
    for i in range(1, width):
        sums.append(circuit.xor_(propagate[i], group_g[i - 1]))
    circuit.output_bus("sum", sums)
    circuit.output("cout", group_g[width - 1])
    return circuit


def build_cla_subtractor(width: int) -> Circuit:
    """An N-bit subtractor a - b built on the CLA (invert b, cin = 1)."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    circuit = Circuit(f"cla_sub{width}")
    a = circuit.input_bus("a", width)
    b = circuit.input_bus("b", width)
    one = circuit.const(1)

    not_b = [circuit.not_(bit) for bit in b]
    propagate = [circuit.xor_(a[i], not_b[i]) for i in range(width)]
    generate = [circuit.and_(a[i], not_b[i]) for i in range(width)]
    generate[0] = circuit.or_(generate[0], circuit.and_(propagate[0], one))

    group_p = list(propagate)
    group_g = list(generate)
    distance = 1
    while distance < width:
        new_p = list(group_p)
        new_g = list(group_g)
        for i in range(distance, width):
            new_g[i] = circuit.or_(
                group_g[i], circuit.and_(group_p[i], group_g[i - distance])
            )
            new_p[i] = circuit.and_(group_p[i], group_p[i - distance])
        group_p, group_g = new_p, new_g
        distance *= 2

    sums = [circuit.xor_(propagate[0], one)]
    for i in range(1, width):
        sums.append(circuit.xor_(propagate[i], group_g[i - 1]))
    circuit.output_bus("sum", sums)
    circuit.output("cout", group_g[width - 1])
    return circuit
