"""Hybrid carry-select / carry-lookahead adder (arXiv:1810.01115 family).

The synchronous adder-architecture comparisons evaluate hybrids that
combine a fast intra-block structure with a select chain between blocks:
each block computes its sums with a Kogge-Stone parallel-prefix network
*twice* — once assuming carry-in 0, once assuming carry-in 1 — and the
real block carry, rippling through one mux per block, selects between
the two precomputed results.  Depth is one block-sized CLA plus
(blocks - 1) muxes: between the pure log-depth CLA and the sqrt-depth
carry-select adder, at lower prefix-network cost than a full-width CLA.
"""

from __future__ import annotations

from repro.circuits.gates import Circuit, Net


def _kogge_stone_block(
    circuit: Circuit, a: list[Net], b: list[Net], cin: Net
) -> tuple[list[Net], Net]:
    """An in-circuit Kogge-Stone prefix block: returns (sums, carry-out).

    Same structure as :func:`repro.circuits.cla.build_cla_adder`, but over
    a slice of an enclosing circuit so blocks can be composed.
    """
    width = len(a)
    propagate = [circuit.xor_(a[i], b[i]) for i in range(width)]
    generate = [circuit.and_(a[i], b[i]) for i in range(width)]
    generate[0] = circuit.or_(generate[0], circuit.and_(propagate[0], cin))

    group_p = list(propagate)
    group_g = list(generate)
    distance = 1
    while distance < width:
        new_p = list(group_p)
        new_g = list(group_g)
        for i in range(distance, width):
            new_g[i] = circuit.or_(
                group_g[i], circuit.and_(group_p[i], group_g[i - distance])
            )
            new_p[i] = circuit.and_(group_p[i], group_p[i - distance])
        group_p, group_g = new_p, new_g
        distance *= 2

    sums = [circuit.xor_(propagate[0], cin)]
    for i in range(1, width):
        sums.append(circuit.xor_(propagate[i], group_g[i - 1]))
    return sums, group_g[width - 1]


def build_hybrid_select_cla_adder(width: int, block: int | None = None) -> Circuit:
    """An N-bit hybrid carry-select/CLA adder with cin.

    ``block`` is the per-block prefix width; the default is one eighth of
    the operand (minimum 4), which keeps the prefix networks narrow enough
    that the design lands *between* the pure carry-select and full-width
    CLA points instead of collapsing onto either.  Same interface as the
    reference ripple adder: inputs ``a``, ``b``, ``cin``; outputs
    ``sum[0..N-1]`` and ``cout``.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if block is None:
        block = max(4, width // 8)
    if block <= 0:
        raise ValueError(f"block size must be positive, got {block}")

    circuit = Circuit(f"hybrid{width}x{block}")
    a = circuit.input_bus("a", width)
    b = circuit.input_bus("b", width)
    carry = circuit.input("cin")

    sums: list[Net] = []
    low = 0
    first = True
    while low < width:
        high = min(low + block, width)
        a_slice, b_slice = a[low:high], b[low:high]
        if first:
            # The first block's carry-in is the primary cin: one CLA pass.
            block_sums, carry = _kogge_stone_block(circuit, a_slice, b_slice, carry)
            sums.extend(block_sums)
            first = False
        else:
            # Speculative block: prefix networks for both carry-in values,
            # selected by the real block carry as it arrives.
            sums0, cout0 = _kogge_stone_block(
                circuit, a_slice, b_slice, circuit.const(0)
            )
            sums1, cout1 = _kogge_stone_block(
                circuit, a_slice, b_slice, circuit.const(1)
            )
            for s0, s1 in zip(sums0, sums1):
                sums.append(circuit.mux(carry, s0, s1))
            carry = circuit.mux(carry, cout0, cout1)
        low = high

    circuit.output_bus("sum", sums)
    circuit.output("cout", carry)
    return circuit
