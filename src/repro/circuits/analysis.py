"""Delay sweeps over the adder netlists — the §3.4 comparison.

The paper cites SPICE results: a redundant binary adder ~3x faster than a
64-bit CLA and ~2.7x faster than the RB -> TC converter, with RB delay
independent of width.  These helpers regenerate that table from the gate
models (normalized inverter-delay units instead of nanoseconds, so only
the ratios and growth shapes are meaningful).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.circuits.carry_select import build_carry_select_adder
from repro.circuits.cla import build_cla_adder
from repro.circuits.converter import build_rb_to_tc_converter
from repro.circuits.dual_bit import build_dual_bit_adder
from repro.circuits.early_output import build_early_output_adder
from repro.circuits.gates import Circuit
from repro.circuits.hybrid import build_hybrid_select_cla_adder
from repro.circuits.rb_adder import build_rb_adder
from repro.circuits.ripple import build_ripple_adder

#: The adder families swept by the §3.4 experiment, in presentation order.
#: Every family here is also registered under the same name in
#: :mod:`repro.circuits.verify`'s ``NETLIST_SPECS``, so each delay number
#: comes from a formally proven netlist.
ADDER_FAMILIES: dict[str, Callable[[int], Circuit]] = {
    "ripple": build_ripple_adder,
    "dual_bit": build_dual_bit_adder,
    "early_output": build_early_output_adder,
    "carry_select": build_carry_select_adder,
    "hybrid_select_cla": build_hybrid_select_cla_adder,
    "cla": build_cla_adder,
    "rb": build_rb_adder,
    "rb_to_tc_converter": build_rb_to_tc_converter,
}


def critical_path_delay(circuit: Circuit) -> float:
    """Critical-path delay of a circuit in normalized inverter units."""
    return circuit.delay()


def adder_delay_table(
    widths: Sequence[int] = (8, 16, 32, 64),
    families: Sequence[str] | None = None,
) -> dict[str, dict[int, float]]:
    """Delay of each adder family at each width.

    Returns ``{family: {width: delay}}``.  The headline ratios the paper
    quotes fall out as ``table['cla'][64] / table['rb'][64]`` (≈3x) and
    ``table['rb_to_tc_converter'][64] / table['rb'][64]`` (≈2.7x).
    """
    if families is None:
        families = list(ADDER_FAMILIES)
    unknown = set(families) - set(ADDER_FAMILIES)
    if unknown:
        raise ValueError(f"unknown adder families: {sorted(unknown)}")
    return {
        family: {width: ADDER_FAMILIES[family](width).delay() for width in widths}
        for family in families
    }


def delay_ratios(width: int = 64) -> dict[str, float]:
    """Speedup of the RB adder over each other family at ``width``."""
    table = adder_delay_table(widths=(width,))
    rb_delay = table["rb"][width]
    return {
        family: delays[width] / rb_delay
        for family, delays in table.items()
        if family != "rb"
    }
