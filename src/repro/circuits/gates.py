"""A minimal combinational-netlist framework with delay accounting.

Circuits are DAGs of typed gates.  Each gate kind has a normalized delay
(roughly in units of an inverter's delay, so results are comparable across
adders); the critical path of a circuit is the longest
input-to-output delay.  Netlists are also functionally evaluable so every
adder model is validated against plain integer arithmetic in the tests.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping


class GateKind(enum.Enum):
    """Supported gate types and their evaluation rules."""

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"  # operands: (select, if0, if1)


#: Normalized gate delays, in inverter-delay units.  Two-level CMOS gates
#: (XOR/XNOR/MUX) cost roughly two simple-gate delays; wide gates are built
#: from 2-input trees by :meth:`Circuit.gate_tree`, so fan-in shows up as
#: tree depth rather than a per-gate penalty.
GATE_DELAYS: dict[GateKind, float] = {
    GateKind.INPUT: 0.0,
    GateKind.CONST0: 0.0,
    GateKind.CONST1: 0.0,
    GateKind.BUF: 1.0,
    GateKind.NOT: 1.0,
    GateKind.AND: 1.5,
    GateKind.OR: 1.5,
    GateKind.NAND: 1.0,
    GateKind.NOR: 1.0,
    GateKind.XOR: 2.0,
    GateKind.XNOR: 2.0,
    GateKind.MUX: 2.0,
}

_ARITY = {
    GateKind.INPUT: 0,
    GateKind.CONST0: 0,
    GateKind.CONST1: 0,
    GateKind.BUF: 1,
    GateKind.NOT: 1,
    GateKind.MUX: 3,
}


class Net:
    """A wire in the circuit: the output of exactly one gate."""

    __slots__ = ("circuit", "index", "kind", "operands", "name")

    def __init__(
        self,
        circuit: "Circuit",
        index: int,
        kind: GateKind,
        operands: tuple["Net", ...],
        name: str | None,
    ) -> None:
        self.circuit = circuit
        self.index = index
        self.kind = kind
        self.operands = operands
        self.name = name

    def __repr__(self) -> str:
        label = self.name or f"n{self.index}"
        return f"Net({label}:{self.kind.value})"


class Circuit:
    """A combinational circuit under construction and analysis."""

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.nets: list[Net] = []
        self.inputs: dict[str, Net] = {}
        self.outputs: dict[str, Net] = {}
        self._const: dict[GateKind, Net] = {}

    # -- construction --------------------------------------------------------

    def _new_net(
        self, kind: GateKind, operands: tuple[Net, ...], name: str | None = None
    ) -> Net:
        net = Net(self, len(self.nets), kind, operands, name)
        self.nets.append(net)
        return net

    def input(self, name: str) -> Net:
        """Declare a 1-bit primary input."""
        if name in self.inputs:
            raise ValueError(f"duplicate input name {name!r}")
        net = self._new_net(GateKind.INPUT, (), name)
        self.inputs[name] = net
        return net

    def input_bus(self, name: str, width: int) -> list[Net]:
        """Declare a bus of inputs ``name[0] .. name[width-1]`` (LSB first)."""
        return [self.input(f"{name}[{i}]") for i in range(width)]

    def const(self, value: int) -> Net:
        """A constant 0 or 1 net (shared per circuit)."""
        kind = GateKind.CONST1 if value else GateKind.CONST0
        if kind not in self._const:
            self._const[kind] = self._new_net(kind, ())
        return self._const[kind]

    def gate(self, kind: GateKind, *operands: Net, name: str | None = None) -> Net:
        """Instantiate a gate and return its output net."""
        expected = _ARITY.get(kind, 2)
        if len(operands) != expected:
            raise ValueError(
                f"{kind.value} expects {expected} operands, got {len(operands)}"
            )
        for op in operands:
            if op.circuit is not self:
                raise ValueError("operand belongs to a different circuit")
        return self._new_net(kind, operands, name)

    def gate_tree(self, kind: GateKind, operands: Iterable[Net]) -> Net:
        """A balanced tree of 2-input gates (for wide AND/OR/XOR)."""
        if kind not in (GateKind.AND, GateKind.OR, GateKind.XOR,
                        GateKind.NAND, GateKind.NOR, GateKind.XNOR):
            raise ValueError(f"cannot build a tree of {kind.value}")
        level = list(operands)
        if not level:
            raise ValueError("gate tree needs at least one operand")
        if len(level) == 1:
            return level[0]
        # NAND/NOR/XNOR trees only invert at the final stage.
        base = {
            GateKind.NAND: GateKind.AND,
            GateKind.NOR: GateKind.OR,
            GateKind.XNOR: GateKind.XOR,
        }.get(kind, kind)
        while len(level) > 2:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self.gate(base, level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return self.gate(kind, level[0], level[1])

    def output(self, name: str, net: Net) -> Net:
        """Mark ``net`` as the primary output ``name``."""
        if name in self.outputs:
            raise ValueError(f"duplicate output name {name!r}")
        if net.circuit is not self:
            raise ValueError("output net belongs to a different circuit")
        self.outputs[name] = net
        return net

    def output_bus(self, name: str, nets: Iterable[Net]) -> None:
        """Mark a bus of outputs ``name[0] ..`` (LSB first)."""
        for i, net in enumerate(nets):
            self.output(f"{name}[{i}]", net)

    # -- convenience wrappers --------------------------------------------------

    def not_(self, a: Net) -> Net:
        return self.gate(GateKind.NOT, a)

    def and_(self, *ops: Net) -> Net:
        return self.gate_tree(GateKind.AND, ops)

    def or_(self, *ops: Net) -> Net:
        return self.gate_tree(GateKind.OR, ops)

    def nor_(self, *ops: Net) -> Net:
        return self.gate_tree(GateKind.NOR, ops)

    def nand_(self, *ops: Net) -> Net:
        return self.gate_tree(GateKind.NAND, ops)

    def xor_(self, *ops: Net) -> Net:
        return self.gate_tree(GateKind.XOR, ops)

    def mux(self, select: Net, if0: Net, if1: Net) -> Net:
        return self.gate(GateKind.MUX, select, if0, if1)

    # -- analysis ------------------------------------------------------------------

    def evaluate(self, assignments: Mapping[str, int]) -> dict[str, int]:
        """Functionally evaluate the circuit for the given input bits."""
        missing = set(self.inputs) - set(assignments)
        if missing:
            raise ValueError(f"missing input assignments: {sorted(missing)}")
        values: list[int] = [0] * len(self.nets)
        for net in self.nets:  # nets are created in topological order
            values[net.index] = self._eval_net(net, values, assignments)
        return {name: values[net.index] for name, net in self.outputs.items()}

    def _eval_net(
        self, net: Net, values: list[int], assignments: Mapping[str, int]
    ) -> int:
        kind = net.kind
        ops = net.operands
        if kind is GateKind.INPUT:
            return 1 if assignments[net.name] else 0
        if kind is GateKind.CONST0:
            return 0
        if kind is GateKind.CONST1:
            return 1
        a = values[ops[0].index]
        if kind is GateKind.BUF:
            return a
        if kind is GateKind.NOT:
            return a ^ 1
        if kind is GateKind.MUX:
            return values[ops[2].index] if a else values[ops[1].index]
        b = values[ops[1].index]
        if kind is GateKind.AND:
            return a & b
        if kind is GateKind.OR:
            return a | b
        if kind is GateKind.NAND:
            return (a & b) ^ 1
        if kind is GateKind.NOR:
            return (a | b) ^ 1
        if kind is GateKind.XOR:
            return a ^ b
        if kind is GateKind.XNOR:
            return (a ^ b) ^ 1
        raise AssertionError(f"unhandled gate kind {kind}")

    def arrival_times(self) -> list[float]:
        """Per-net arrival time (longest path from any input)."""
        times: list[float] = [0.0] * len(self.nets)
        for net in self.nets:
            if net.operands:
                arrival = max(times[op.index] for op in net.operands)
            else:
                arrival = 0.0
            times[net.index] = arrival + GATE_DELAYS[net.kind]
        return times

    def critical_path(self) -> tuple[float, list[Net]]:
        """The circuit delay and one worst input-to-output path."""
        if not self.outputs:
            raise ValueError("circuit has no outputs")
        times = self.arrival_times()
        worst = max(self.outputs.values(), key=lambda net: times[net.index])
        path = [worst]
        node = worst
        while node.operands:
            node = max(node.operands, key=lambda op: times[op.index])
            path.append(node)
        path.reverse()
        return times[worst.index], path

    def delay(self) -> float:
        """The critical-path delay in normalized inverter units."""
        return self.critical_path()[0]

    def gate_count(self) -> int:
        """Number of logic gates (inputs and constants excluded)."""
        skip = (GateKind.INPUT, GateKind.CONST0, GateKind.CONST1)
        return sum(1 for net in self.nets if net.kind not in skip)

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, gates={self.gate_count()}, "
            f"inputs={len(self.inputs)}, outputs={len(self.outputs)})"
        )


def bus_value(bits: Mapping[str, int], name: str, width: int) -> int:
    """Reassemble an output bus into an unsigned integer."""
    value = 0
    for i in range(width):
        value |= (bits[f"{name}[{i}]"] & 1) << i
    return value


def assign_bus(assignments: dict[str, int], name: str, value: int, width: int) -> None:
    """Spread an unsigned integer over a named input bus (in place)."""
    for i in range(width):
        assignments[f"{name}[{i}]"] = (value >> i) & 1
