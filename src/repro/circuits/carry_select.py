"""Carry-select adder: ripple blocks computed for both carries, muxed.

Included because the paper's related work compares redundant binary adders
against both carry-lookahead and carry-select designs; its depth sits
between ripple and CLA (O(sqrt N) with balanced blocks).
"""

from __future__ import annotations

import math

from repro.circuits.gates import Circuit
from repro.circuits.ripple import full_adder


def build_carry_select_adder(width: int, block: int | None = None) -> Circuit:
    """An N-bit carry-select adder with cin.

    ``block`` is the ripple-block size; the default is ~sqrt(N), the
    delay-balanced choice.  Outputs ``sum[0..N-1]`` and ``cout``.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if block is None:
        block = max(1, round(math.sqrt(width)))
    if block <= 0:
        raise ValueError(f"block size must be positive, got {block}")

    circuit = Circuit(f"carry_select{width}x{block}")
    a = circuit.input_bus("a", width)
    b = circuit.input_bus("b", width)
    carry = circuit.input("cin")

    sums = []
    low = 0
    first = True
    while low < width:
        high = min(low + block, width)
        if first:
            # The first block's carry-in is known; plain ripple.
            for i in range(low, high):
                total, carry = full_adder(circuit, a[i], b[i], carry)
                sums.append(total)
            first = False
        else:
            # Speculative block: compute with carry-in 0 and 1, then select.
            carry0 = circuit.const(0)
            carry1 = circuit.const(1)
            sums0 = []
            sums1 = []
            for i in range(low, high):
                t0, carry0 = full_adder(circuit, a[i], b[i], carry0)
                t1, carry1 = full_adder(circuit, a[i], b[i], carry1)
                sums0.append(t0)
                sums1.append(t1)
            for t0, t1 in zip(sums0, sums1):
                sums.append(circuit.mux(carry, t0, t1))
            carry = circuit.mux(carry, carry0, carry1)
        low = high

    circuit.output_bus("sum", sums)
    circuit.output("cout", carry)
    return circuit
