"""Dual-bit full-adder ripple chain (arXiv:1704.07619 family).

The latency-optimized asynchronous RCA literature replaces the single-bit
full adder with a *dual-bit* cell: each stage consumes two operand bit
pairs and produces two sum bits plus a carry that has hopped two
positions.  The carry logic across the pair is flattened into a single
two-level AND-OR (the pair's generate/propagate composition), so the
carry chain is half as long as a plain ripple chain and each hop is
cheaper than a full-adder's carry majority.

The gate model here is synchronous worst-case: the early-output /
average-case benefits of the asynchronous originals do not show up, but
the halved chain length does, which is the property the delay sweep and
the Pareto frontier consume.
"""

from __future__ import annotations

from repro.circuits.gates import Circuit, Net
from repro.circuits.ripple import full_adder


def _dual_bit_cell(
    circuit: Circuit, a0: Net, b0: Net, a1: Net, b1: Net, cin: Net
) -> tuple[Net, Net, Net]:
    """One dual-bit cell: returns (sum0, sum1, carry-out of the pair).

    Per-bit propagate/generate feed a flattened pair carry:

    * ``c1   = g0 | (p0 & cin)`` — carry into the high bit,
    * ``cout = g1 | (p1 & g0) | (p1 & p0 & cin)`` — the two-position hop,
      composed directly from the pair's generate/propagate terms rather
      than through the intermediate ``c1``, which is what shortens the
      chain's critical path.
    """
    p0 = circuit.xor_(a0, b0)
    g0 = circuit.and_(a0, b0)
    p1 = circuit.xor_(a1, b1)
    g1 = circuit.and_(a1, b1)

    sum0 = circuit.xor_(p0, cin)
    c1 = circuit.or_(g0, circuit.and_(p0, cin))
    sum1 = circuit.xor_(p1, c1)

    pair_propagate = circuit.and_(p1, p0)
    cout = circuit.or_(
        g1,
        circuit.and_(p1, g0),
        circuit.and_(pair_propagate, cin),
    )
    return sum0, sum1, cout


def build_dual_bit_adder(width: int) -> Circuit:
    """An N-bit adder rippling a carry through ceil(N/2) dual-bit cells.

    Same interface as the reference ripple adder: inputs ``a``, ``b``,
    ``cin``; outputs ``sum[0..N-1]`` and ``cout``.  An odd top bit falls
    back to a single full-adder cell.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    circuit = Circuit(f"dual_bit{width}")
    a = circuit.input_bus("a", width)
    b = circuit.input_bus("b", width)
    carry = circuit.input("cin")
    sums: list[Net] = []
    i = 0
    while i + 1 < width:
        sum0, sum1, carry = _dual_bit_cell(
            circuit, a[i], b[i], a[i + 1], b[i + 1], carry
        )
        sums.extend((sum0, sum1))
        i += 2
    if i < width:  # odd width: one plain full adder on top
        total, carry = full_adder(circuit, a[i], b[i], carry)
        sums.append(total)
    circuit.output_bus("sum", sums)
    circuit.output("cout", carry)
    return circuit
