"""Formal equivalence checking for the adder netlist library.

Every netlist in :mod:`repro.circuits` is *proven* — not sampled — to
compute its arithmetic specification, in the style of the BDD/word-level
adder verifiers (PolyAdd, arXiv:2009.03242): each output of a candidate
circuit is compiled to a reduced ordered binary decision diagram under an
interleaved bus ordering, and compared against the specification's BDD.
ROBDDs are canonical for a fixed variable order, so two functions are
equal iff their node ids are equal — equality over **all** 2^k input
assignments in one structural comparison.

Soundness chain
---------------
* The reference ripple adder is checked against a *symbolic textbook
  adder* (a full-adder chain built directly over the input variables,
  independent of any netlist code) — the arithmetic anchor.
* Every two's-complement adder netlist is compared output-by-output
  against the reference ripple adder's BDDs (the ISSUE's contract).
* Word-level netlists whose interface is not (a, b, cin) — the RB adder,
  the RB->TC converter, the CLA subtractor, the SAM decoder — are checked
  against symbolic word arithmetic built from the same full-adder chain
  primitive, under the encoding-validity constraint where one exists
  (RB digits never encode (1, 1)).
* Any claimed counterexample is re-executed *concretely* through
  :meth:`Circuit.evaluate` and an integer-arithmetic model before being
  reported, so the checker cross-validates its own refutations.

The deliberately broken :func:`build_mutant_ripple_adder` is the negative
control: the checker (and the brute-force tests) must reject it.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.circuits.carry_select import build_carry_select_adder
from repro.circuits.cla import build_cla_adder, build_cla_subtractor
from repro.circuits.converter import build_rb_to_tc_converter
from repro.circuits.dual_bit import build_dual_bit_adder
from repro.circuits.early_output import build_early_output_adder
from repro.circuits.gates import Circuit, GateKind
from repro.circuits.hybrid import build_hybrid_select_cla_adder
from repro.circuits.rb_adder import build_rb_adder
from repro.circuits.ripple import build_ripple_adder, full_adder
from repro.circuits.sam import build_sam_decoder

# ---------------------------------------------------------------------------
# A minimal ROBDD manager
# ---------------------------------------------------------------------------

_TERMINAL_VAR = 1 << 30  # orders after every real variable


class BDD:
    """Reduced ordered BDDs over integer-indexed variables.

    Nodes are integers: 0 and 1 are the terminals; every other id names a
    ``(var, low, high)`` triple interned in a unique table, so semantic
    equality of two functions is id equality.
    """

    FALSE = 0
    TRUE = 1

    def __init__(self) -> None:
        self._var = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._low = [0, 1]
        self._high = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._memo: dict[tuple[str, int, int], int] = {}

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def var(self, index: int) -> int:
        """The BDD of the single variable ``index``."""
        if index < 0 or index >= _TERMINAL_VAR:
            raise ValueError(f"variable index out of range: {index}")
        return self._mk(index, 0, 1)

    @property
    def node_count(self) -> int:
        return len(self._var)

    def apply(self, op: str, f: int, g: int) -> int:
        """``f op g`` for op in {'and', 'or', 'xor'}."""
        if op == "and":
            if f == 0 or g == 0:
                return 0
            if f == 1:
                return g
            if g == 1:
                return f
            if f == g:
                return f
        elif op == "or":
            if f == 1 or g == 1:
                return 1
            if f == 0:
                return g
            if g == 0:
                return f
            if f == g:
                return f
        elif op == "xor":
            if f == g:
                return 0
            if f == 0:
                return g
            if g == 0:
                return f
        else:
            raise ValueError(f"unknown BDD operation {op!r}")
        if f > g:  # all three ops are commutative
            f, g = g, f
        key = (op, f, g)
        node = self._memo.get(key)
        if node is not None:
            return node
        var_f, var_g = self._var[f], self._var[g]
        top = min(var_f, var_g)
        f_low, f_high = (self._low[f], self._high[f]) if var_f == top else (f, f)
        g_low, g_high = (self._low[g], self._high[g]) if var_g == top else (g, g)
        node = self._mk(
            top, self.apply(op, f_low, g_low), self.apply(op, f_high, g_high)
        )
        self._memo[key] = node
        return node

    def not_(self, f: int) -> int:
        return self.apply("xor", f, 1)

    def mux(self, select: int, if0: int, if1: int) -> int:
        return self.apply(
            "or",
            self.apply("and", select, if1),
            self.apply("and", self.not_(select), if0),
        )

    def any_sat(self, f: int) -> dict[int, int]:
        """One satisfying assignment (var index -> bit) of a nonzero BDD.

        In a reduced BDD every node other than the 0 terminal reaches 1,
        so a greedy walk preferring any non-zero branch terminates at 1.
        Variables not on the chosen path are unconstrained.
        """
        if f == 0:
            raise ValueError("the constant-false BDD has no satisfying assignment")
        assignment: dict[int, int] = {}
        while f > 1:
            if self._low[f] != 0:
                assignment[self._var[f]] = 0
                f = self._low[f]
            else:
                assignment[self._var[f]] = 1
                f = self._high[f]
        return assignment


# ---------------------------------------------------------------------------
# Circuit -> BDD compilation
# ---------------------------------------------------------------------------

def input_order(circuit: Circuit) -> dict[str, int]:
    """Interleaved variable order: all buses' bit 0, then bit 1, ...

    Interleaving the operand buses keeps every adder-class function (carry
    chains, group generates, word comparisons) polynomial-size; ordering
    bus-by-bus instead would make the carry BDDs exponential.  Scalar
    inputs (``cin``) come first.
    """
    def key(name: str) -> tuple[int, str]:
        if name.endswith("]") and "[" in name:
            base, _, index = name[:-1].rpartition("[")
            return (int(index), base)
        return (-1, name)

    return {name: i for i, name in enumerate(sorted(circuit.inputs, key=key))}


def circuit_bdds(
    circuit: Circuit, bdd: BDD, order: Mapping[str, int]
) -> dict[str, int]:
    """Compile every primary output of ``circuit`` to a BDD node."""
    values: list[int] = [0] * len(circuit.nets)
    for net in circuit.nets:  # nets are created in topological order
        kind = net.kind
        if kind is GateKind.INPUT:
            node = bdd.var(order[net.name])
        elif kind is GateKind.CONST0:
            node = BDD.FALSE
        elif kind is GateKind.CONST1:
            node = BDD.TRUE
        elif kind is GateKind.BUF:
            node = values[net.operands[0].index]
        elif kind is GateKind.NOT:
            node = bdd.not_(values[net.operands[0].index])
        elif kind is GateKind.MUX:
            select, if0, if1 = (values[op.index] for op in net.operands)
            node = bdd.mux(select, if0, if1)
        else:
            a, b = (values[op.index] for op in net.operands)
            if kind is GateKind.AND:
                node = bdd.apply("and", a, b)
            elif kind is GateKind.OR:
                node = bdd.apply("or", a, b)
            elif kind is GateKind.XOR:
                node = bdd.apply("xor", a, b)
            elif kind is GateKind.NAND:
                node = bdd.not_(bdd.apply("and", a, b))
            elif kind is GateKind.NOR:
                node = bdd.not_(bdd.apply("or", a, b))
            elif kind is GateKind.XNOR:
                node = bdd.not_(bdd.apply("xor", a, b))
            else:
                raise AssertionError(f"unhandled gate kind {kind}")
        values[net.index] = node
    return {name: values[net.index] for name, net in circuit.outputs.items()}


# ---------------------------------------------------------------------------
# Symbolic word arithmetic (the specification side)
# ---------------------------------------------------------------------------

def sym_add(
    bdd: BDD, xs: Sequence[int], ys: Sequence[int], cin: int = BDD.FALSE
) -> tuple[list[int], int]:
    """Textbook full-adder chain over BDD bit vectors: (sum bits, cout).

    This is the arithmetic primitive every specification reduces to; it
    is built directly over variables/words, independent of any netlist
    builder, so it anchors the whole soundness chain.
    """
    sums: list[int] = []
    carry = cin
    for x, y in zip(xs, ys):
        axb = bdd.apply("xor", x, y)
        sums.append(bdd.apply("xor", axb, carry))
        carry = bdd.apply(
            "or", bdd.apply("and", x, y), bdd.apply("and", axb, carry)
        )
    return sums, carry


def sym_sub(bdd: BDD, xs: Sequence[int], ys: Sequence[int]) -> tuple[list[int], int]:
    """``xs - ys`` mod 2**n as ``xs + ~ys + 1``: (difference bits, carry)."""
    complemented = [bdd.not_(y) for y in ys]
    return sym_add(bdd, xs, complemented, cin=BDD.TRUE)


def _input_word(
    bdd: BDD, order: Mapping[str, int], bus: str, width: int
) -> list[int]:
    return [bdd.var(order[f"{bus}[{i}]"]) for i in range(width)]


def _extend(bits: Sequence[int], width: int) -> list[int]:
    """Zero-extend an unsigned BDD word to ``width`` bits."""
    return list(bits) + [BDD.FALSE] * (width - len(bits))


# ---------------------------------------------------------------------------
# Specifications
# ---------------------------------------------------------------------------

def _spec_tc_adder(bdd: BDD, order: Mapping[str, int], width: int) -> dict[str, int]:
    a = _input_word(bdd, order, "a", width)
    b = _input_word(bdd, order, "b", width)
    sums, cout = sym_add(bdd, a, b, cin=bdd.var(order["cin"]))
    spec = {f"sum[{i}]": bit for i, bit in enumerate(sums)}
    spec["cout"] = cout
    return spec


def _spec_tc_subtractor(
    bdd: BDD, order: Mapping[str, int], width: int
) -> dict[str, int]:
    a = _input_word(bdd, order, "a", width)
    b = _input_word(bdd, order, "b", width)
    sums, cout = sym_sub(bdd, a, b)
    spec = {f"sum[{i}]": bit for i, bit in enumerate(sums)}
    spec["cout"] = cout
    return spec


def _spec_sam_decoder(
    bdd: BDD, order: Mapping[str, int], width: int, lines: int
) -> dict[str, int]:
    a = _input_word(bdd, order, "a", width)
    b = _input_word(bdd, order, "b", width)
    sums, _ = sym_add(bdd, a, b)
    spec: dict[str, int] = {}
    for k in range(lines):
        match = BDD.TRUE
        for i in range(width):
            bit = sums[i] if (k >> i) & 1 else bdd.not_(sums[i])
            match = bdd.apply("and", match, bit)
        spec[f"line[{k}]"] = match
    return spec


def _rb_validity(bdd: BDD, order: Mapping[str, int], width: int) -> int:
    """No digit of either RB operand may encode (plus=1, minus=1)."""
    valid = BDD.TRUE
    for bus_pair in (("xp", "xn"), ("yp", "yn")):
        plus = _input_word(bdd, order, bus_pair[0], width)
        minus = _input_word(bdd, order, bus_pair[1], width)
        for p, n in zip(plus, minus):
            valid = bdd.apply("and", valid, bdd.not_(bdd.apply("and", p, n)))
    return valid


def _rb_words(
    bdd: BDD, outputs: Mapping[str, int], order: Mapping[str, int], width: int
) -> tuple[list[int], list[int]]:
    """(decoded output word, decoded input-sum word), both width+2 bits.

    The RB adder's contract is *integer* equality: the decoded output
    (sum digits plus the carry-out digit at position ``width``) must equal
    the decoded sum of the inputs.  Both sides fit in ``width + 2``-bit
    two's complement, so equality mod 2**(width+2) is true equality.
    """
    total = width + 2
    zp = _extend([outputs[f"zp[{i}]"] for i in range(width)], total)
    zn = _extend([outputs[f"zn[{i}]"] for i in range(width)], total)
    lhs, _ = sym_sub(bdd, zp, zn)
    cout_plus = [BDD.FALSE] * width + [outputs["cout_plus"], BDD.FALSE]
    cout_minus = [BDD.FALSE] * width + [outputs["cout_minus"], BDD.FALSE]
    lhs, _ = sym_add(bdd, lhs, cout_plus)
    lhs, _ = sym_sub(bdd, lhs, cout_minus)

    xp = _extend(_input_word(bdd, order, "xp", width), total)
    xn = _extend(_input_word(bdd, order, "xn", width), total)
    yp = _extend(_input_word(bdd, order, "yp", width), total)
    yn = _extend(_input_word(bdd, order, "yn", width), total)
    x_value, _ = sym_sub(bdd, xp, xn)
    y_value, _ = sym_sub(bdd, yp, yn)
    rhs, _ = sym_add(bdd, x_value, y_value)
    return lhs, rhs


# ---------------------------------------------------------------------------
# Concrete (integer) reference models, used to confirm counterexamples
# ---------------------------------------------------------------------------

def _bus_int(assignment: Mapping[str, int], bus: str, width: int) -> int:
    value = 0
    for i in range(width):
        value |= (assignment.get(f"{bus}[{i}]", 0) & 1) << i
    return value


def _concrete_ok(
    kind: str, width: int, lines: int, assignment: Mapping[str, int],
    outputs: Mapping[str, int],
) -> bool:
    """Does the circuit's concrete output violate the integer model?"""
    mask = (1 << width) - 1
    a = _bus_int(assignment, "a", width)
    b = _bus_int(assignment, "b", width)
    if kind == "tc_adder":
        total = a + b + assignment.get("cin", 0)
        got = _bus_int(outputs, "sum", width) | (outputs["cout"] << width)
        return got == total
    if kind in ("tc_subtractor", "rb_to_tc"):
        total = a + ((~b) & mask) + 1
        got = _bus_int(outputs, "sum", width) | (outputs["cout"] << width)
        return got == total
    if kind == "sam_decoder":
        total = (a + b) & mask
        return all(
            outputs[f"line[{k}]"] == (1 if total == k else 0)
            for k in range(lines)
        )
    if kind == "rb_adder":
        def decode(plus_bus: str, minus_bus: str) -> int:
            return _bus_int(assignment, plus_bus, width) - _bus_int(
                assignment, minus_bus, width
            )
        expected = decode("xp", "xn") + decode("yp", "yn")
        got = (
            _bus_int(outputs, "zp", width) - _bus_int(outputs, "zn", width)
            + (outputs["cout_plus"] - outputs["cout_minus"]) * (1 << width)
        )
        return got == expected
    raise ValueError(f"unknown specification kind {kind!r}")


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------

#: Specification kinds understood by :func:`check_circuit`.
KINDS = ("tc_adder", "tc_subtractor", "rb_to_tc", "rb_adder", "sam_decoder")


@dataclass
class EquivalenceResult:
    """Outcome of proving one netlist against its specification."""

    name: str
    kind: str
    width: int
    equivalent: bool
    outputs_checked: int
    bdd_nodes: int
    seconds: float
    mismatched_output: str | None = None
    counterexample: dict[str, int] | None = None
    detail: str = ""

    def as_dict(self) -> dict:
        payload = {
            "name": self.name,
            "kind": self.kind,
            "width": self.width,
            "equivalent": self.equivalent,
            "outputs_checked": self.outputs_checked,
            "bdd_nodes": self.bdd_nodes,
            "seconds": round(self.seconds, 3),
        }
        if not self.equivalent:
            payload["mismatched_output"] = self.mismatched_output
            payload["counterexample"] = self.counterexample
            payload["detail"] = self.detail
        return payload

    def describe(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else "NOT EQUIVALENT"
        line = (
            f"{self.name} ({self.kind}, width {self.width}): {verdict} "
            f"[{self.outputs_checked} outputs, {self.bdd_nodes} BDD nodes, "
            f"{self.seconds:.2f}s]"
        )
        if not self.equivalent:
            line += f" first bad output {self.mismatched_output!r}: {self.detail}"
        return line


def _counterexample(
    bdd: BDD,
    diff: int,
    circuit: Circuit,
    order: Mapping[str, int],
    kind: str,
    width: int,
    lines: int,
) -> tuple[dict[str, int], str]:
    """Extract, concretize, and cross-validate one refuting assignment."""
    by_index = {index: name for name, index in order.items()}
    assignment = {name: 0 for name in circuit.inputs}
    for var, bit in bdd.any_sat(diff).items():
        assignment[by_index[var]] = bit
    outputs = circuit.evaluate(assignment)
    confirmed = not _concrete_ok(kind, width, lines, assignment, outputs)
    detail = (
        "counterexample confirmed by concrete evaluation"
        if confirmed
        else "INTERNAL: BDD refutation not confirmed concretely — checker bug"
    )
    return assignment, detail


def check_circuit(circuit: Circuit, kind: str, width: int) -> EquivalenceResult:
    """Prove ``circuit`` equal to the ``kind`` specification at ``width``.

    For two's-complement adders the specification is the reference ripple
    adder (whose own BDDs are first asserted equal to the symbolic
    textbook adder — the anchor); for the word-level netlists it is
    symbolic word arithmetic, under the RB encoding-validity constraint
    where applicable.
    """
    if kind not in KINDS:
        raise ValueError(f"unknown specification kind {kind!r}; choices: {KINDS}")
    started = time.perf_counter()
    buses = {
        "tc_adder": ("a", "b"),
        "tc_subtractor": ("a", "b"),
        "rb_to_tc": ("a", "b"),
        "sam_decoder": ("a", "b"),
        "rb_adder": ("xp", "xn", "yp", "yn"),
    }[kind]
    required = {f"{bus}[{i}]" for bus in buses for i in range(width)}
    if kind == "tc_adder":
        required.add("cin")
    if set(circuit.inputs) != required:
        missing = sorted(required - set(circuit.inputs))
        extra = sorted(set(circuit.inputs) - required)
        return EquivalenceResult(
            name=circuit.name, kind=kind, width=width, equivalent=False,
            outputs_checked=0, bdd_nodes=0, seconds=time.perf_counter() - started,
            mismatched_output="<inputs>",
            detail=f"input interface mismatch: missing {missing}, unexpected {extra}",
        )
    bdd = BDD()
    order = input_order(circuit)
    outputs = circuit_bdds(circuit, bdd, order)
    lines = len(outputs) if kind == "sam_decoder" else 0

    constraint = BDD.TRUE
    if kind == "tc_adder":
        spec = _spec_tc_adder(bdd, order, width)
        # The anchor: the reference ripple netlist must equal the symbolic
        # textbook adder before it is allowed to judge anyone else.
        reference = circuit_bdds(build_ripple_adder(width), bdd, order)
        if reference != spec:
            raise AssertionError(
                "reference ripple adder disagrees with the symbolic "
                f"textbook adder at width {width} — checker is unsound"
            )
        spec = reference
    elif kind == "tc_subtractor" or kind == "rb_to_tc":
        spec = _spec_tc_subtractor(bdd, order, width)
    elif kind == "sam_decoder":
        spec = _spec_sam_decoder(bdd, order, width, lines)
    else:  # rb_adder: word-level comparison under the validity constraint
        constraint = _rb_validity(bdd, order, width)
        lhs, rhs = _rb_words(bdd, outputs, order, width)
        spec = {f"value[{i}]": bit for i, bit in enumerate(rhs)}
        outputs = dict(outputs)  # also require valid (non-(1,1)) output digits
        checked = {f"value[{i}]": bit for i, bit in enumerate(lhs)}
        for i in range(width):
            checked[f"digit_valid[{i}]"] = bdd.not_(
                bdd.apply("and", outputs[f"zp[{i}]"], outputs[f"zn[{i}]"])
            )
            spec[f"digit_valid[{i}]"] = BDD.TRUE
        checked["cout_valid"] = bdd.not_(
            bdd.apply("and", outputs["cout_plus"], outputs["cout_minus"])
        )
        spec["cout_valid"] = BDD.TRUE
        outputs = checked

    if kind != "rb_adder" and set(outputs) != set(spec):
        missing = sorted(set(spec) - set(outputs))
        extra = sorted(set(outputs) - set(spec))
        return EquivalenceResult(
            name=circuit.name, kind=kind, width=width, equivalent=False,
            outputs_checked=0, bdd_nodes=bdd.node_count,
            seconds=time.perf_counter() - started,
            mismatched_output=(missing + extra or ["<interface>"])[0],
            detail=f"interface mismatch: missing {missing}, unexpected {extra}",
        )

    for name in sorted(spec):
        diff = bdd.apply("xor", outputs[name], spec[name])
        diff = bdd.apply("and", diff, constraint)
        if diff != BDD.FALSE:
            assignment, detail = _counterexample(
                bdd, diff, circuit, order, kind, width, lines
            )
            return EquivalenceResult(
                name=circuit.name, kind=kind, width=width, equivalent=False,
                outputs_checked=len(spec), bdd_nodes=bdd.node_count,
                seconds=time.perf_counter() - started,
                mismatched_output=name,
                counterexample=assignment,
                detail=detail,
            )
    return EquivalenceResult(
        name=circuit.name, kind=kind, width=width, equivalent=True,
        outputs_checked=len(spec), bdd_nodes=bdd.node_count,
        seconds=time.perf_counter() - started,
    )


# ---------------------------------------------------------------------------
# The library registry and gate
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NetlistSpec:
    """One library netlist bound to its specification kind."""

    name: str
    build: Callable[[int], Circuit]
    kind: str
    description: str
    #: Widths with exponentially many outputs (the SAM decoder's one-hot
    #: word lines) are capped; adders are checked at the full datapath.
    max_width: int | None = None

    def check_width(self, width: int) -> int:
        if self.max_width is not None:
            return min(width, self.max_width)
        return width


#: Every netlist in the library, bound to the specification it must prove.
NETLIST_SPECS: dict[str, NetlistSpec] = {
    spec.name: spec
    for spec in (
        NetlistSpec("ripple", build_ripple_adder, "tc_adder",
                    "ripple-carry reference (anchored to the symbolic adder)"),
        NetlistSpec("carry_select", build_carry_select_adder, "tc_adder",
                    "carry-select adder"),
        NetlistSpec("cla", build_cla_adder, "tc_adder",
                    "Kogge-Stone carry-lookahead adder"),
        NetlistSpec("dual_bit", build_dual_bit_adder, "tc_adder",
                    "dual-bit full-adder ripple chain"),
        NetlistSpec("early_output", build_early_output_adder, "tc_adder",
                    "early-output (mux-select carry) adder"),
        NetlistSpec("hybrid_select_cla", build_hybrid_select_cla_adder,
                    "tc_adder", "hybrid carry-select/CLA adder"),
        NetlistSpec("rb", build_rb_adder, "rb_adder",
                    "redundant binary adder (word-level, valid encodings)"),
        NetlistSpec("rb_to_tc_converter", build_rb_to_tc_converter, "rb_to_tc",
                    "RB -> two's-complement format converter"),
        NetlistSpec("cla_subtractor", build_cla_subtractor, "tc_subtractor",
                    "CLA subtractor (the converter's substrate)"),
        NetlistSpec("sam_decoder", build_sam_decoder, "sam_decoder",
                    "sum-addressed-memory decoder", max_width=6),
    )
}


def check_netlist(name: str, width: int) -> EquivalenceResult:
    """Prove one registered library netlist at (up to) ``width``."""
    spec = NETLIST_SPECS.get(name)
    if spec is None:
        raise ValueError(
            f"unknown netlist {name!r}; choices: {sorted(NETLIST_SPECS)}"
        )
    checked = spec.check_width(width)
    return check_circuit(spec.build(checked), spec.kind, checked)


def verify_library(
    width: int = 64, names: Sequence[str] | None = None
) -> dict[str, EquivalenceResult]:
    """Prove every (or the named) library netlist; returns per-name results."""
    if names is None:
        names = sorted(NETLIST_SPECS)
    unknown = set(names) - set(NETLIST_SPECS)
    if unknown:
        raise ValueError(f"unknown netlists: {sorted(unknown)}")
    return {name: check_netlist(name, width) for name in names}


def assert_verified(width: int = 64, names: Sequence[str] | None = None) -> dict[str, EquivalenceResult]:
    """The gate: raise unless every requested netlist proves equivalent.

    Consumers that turn netlist delays into machine presets (the Pareto
    sweep) call this first, so no unproven circuit ever reaches the
    timing model.
    """
    results = verify_library(width, names)
    failures = [r.describe() for r in results.values() if not r.equivalent]
    if failures:
        raise ValueError(
            "formal equivalence gate failed:\n  " + "\n  ".join(failures)
        )
    return results


# ---------------------------------------------------------------------------
# Negative control
# ---------------------------------------------------------------------------

def build_mutant_ripple_adder(width: int, broken_bit: int | None = None) -> Circuit:
    """A deliberately broken ripple adder: one bit drops carry propagation.

    At ``broken_bit`` (default: the middle bit) the carry out is just the
    generate term ``a & b`` — the ``(a ^ b) & cin`` propagate term is
    dropped, so a carry arriving at that bit never crosses it.  The
    checker (and any honest brute force) must reject this netlist; it is
    the library's negative control and is deliberately NOT registered in
    :data:`NETLIST_SPECS`.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if broken_bit is None:
        broken_bit = width // 2
    if not 0 <= broken_bit < width:
        raise ValueError(f"broken bit {broken_bit} out of range for width {width}")
    circuit = Circuit(f"mutant_ripple{width}@{broken_bit}")
    a = circuit.input_bus("a", width)
    b = circuit.input_bus("b", width)
    carry = circuit.input("cin")
    sums = []
    for i in range(width):
        if i == broken_bit:
            axb = circuit.xor_(a[i], b[i])
            sums.append(circuit.xor_(axb, carry))
            carry = circuit.and_(a[i], b[i])  # propagate term dropped
        else:
            total, carry = full_adder(circuit, a[i], b[i], carry)
            sums.append(total)
    circuit.output_bus("sum", sums)
    circuit.output("cout", carry)
    return circuit


# ---------------------------------------------------------------------------
# Packed brute force (the checker's independent cross-validation)
# ---------------------------------------------------------------------------

def evaluate_packed(circuit: Circuit, assignments: Mapping[str, int], mask: int) -> dict[str, int]:
    """Evaluate many input vectors at once, one per bit of a Python int.

    ``assignments`` maps each input name to a packed word whose bit *t* is
    that input's value in test vector *t*; ``mask`` covers the vector
    count.  All gate kinds are bitwise, so the whole circuit evaluates
    word-parallel — this is what makes *exhaustive* 8-bit brute force
    cheap enough for the test suite, giving the BDD checker an
    independent ground truth to agree with.
    """
    values: list[int] = [0] * len(circuit.nets)
    for net in circuit.nets:
        kind = net.kind
        ops = net.operands
        if kind is GateKind.INPUT:
            value = assignments[net.name] & mask
        elif kind is GateKind.CONST0:
            value = 0
        elif kind is GateKind.CONST1:
            value = mask
        elif kind is GateKind.BUF:
            value = values[ops[0].index]
        elif kind is GateKind.NOT:
            value = values[ops[0].index] ^ mask
        elif kind is GateKind.MUX:
            select = values[ops[0].index]
            value = (select & values[ops[2].index]) | (
                (select ^ mask) & values[ops[1].index]
            )
        else:
            a, b = values[ops[0].index], values[ops[1].index]
            if kind is GateKind.AND:
                value = a & b
            elif kind is GateKind.OR:
                value = a | b
            elif kind is GateKind.NAND:
                value = (a & b) ^ mask
            elif kind is GateKind.NOR:
                value = (a | b) ^ mask
            elif kind is GateKind.XOR:
                value = a ^ b
            else:  # XNOR
                value = (a ^ b) ^ mask
        values[net.index] = value
    return {name: values[net.index] for name, net in circuit.outputs.items()}
