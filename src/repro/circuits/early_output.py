"""Early-output carry chain (arXiv:1807.09762 / 1706.04487 family).

The asynchronous early-output RCAs route the carry through a Manchester-
style select chain instead of the full-adder's AND-OR majority: with
per-bit ``p = a ^ b`` and ``g = a & b``,

    c_i = g_i         when p_i == 0   (carry killed or generated locally)
    c_i = c_{i-1}     when p_i == 1   (carry propagates)

i.e. ``c_i = mux(p_i, g_i, c_{i-1})`` — one mux per position on the
chain.  In the asynchronous originals a non-propagating position lets the
stage complete *early*; in this synchronous worst-case gate model that
average-case win is invisible, but the chain itself is still cheaper per
position than the ripple full-adder's carry (one 2-level mux vs an
AND-OR pair), which is the delay difference the sweep measures.
"""

from __future__ import annotations

from repro.circuits.gates import Circuit


def build_early_output_adder(width: int) -> Circuit:
    """An N-bit adder with a mux-select (Manchester) carry chain.

    Same interface as the reference ripple adder: inputs ``a``, ``b``,
    ``cin``; outputs ``sum[0..N-1]`` and ``cout``.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    circuit = Circuit(f"early_output{width}")
    a = circuit.input_bus("a", width)
    b = circuit.input_bus("b", width)
    carry = circuit.input("cin")
    sums = []
    for i in range(width):
        propagate = circuit.xor_(a[i], b[i])
        generate = circuit.and_(a[i], b[i])
        sums.append(circuit.xor_(propagate, carry))
        carry = circuit.mux(propagate, generate, carry)
    circuit.output_bus("sum", sums)
    circuit.output("cout", carry)
    return circuit
