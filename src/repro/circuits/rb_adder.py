"""Gate-level redundant binary adder: the Figure 2 digit slice.

Each digit is encoded as a (negative, positive) bit pair.  Per the paper's
description of Figure 2, each slice computes:

* ``h_i`` — a function of digit i of both inputs only.  Here ``h_i`` is the
  "both input digits non-negative" indicator, which decides how the digit
  sum one position above is split into intermediate carry and interim sum
  (it tells that slice whether a negative intermediate carry can arrive).
* ``f_i`` — the intermediate carry out of digit i, a function of digit i
  and ``h_{i-1}``.  Encoded as a (carry-plus, carry-minus) pair.
* ``z_i`` — the sum digit, a function of digit i, ``h_{i-1}``, and
  ``f_{i-1}``.

The critical path through one slice — and through the whole adder, since
no signal crosses more than two digit positions — is a short constant
chain, independent of operand width (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.gates import Circuit, Net


@dataclass(frozen=True)
class DigitSliceOutputs:
    """Nets produced by one digit slice."""

    h: Net          # both-inputs-non-negative indicator for this digit
    carry_plus: Net  # intermediate carry f_i == +1
    carry_minus: Net  # intermediate carry f_i == -1
    sum_plus: Net   # final digit z_i == +1
    sum_minus: Net  # final digit z_i == -1


def _digit_slice(
    circuit: Circuit,
    xp: Net, xn: Net, yp: Net, yn: Net,
    h_prev: Net,
    carry_plus_prev: Net,
    carry_minus_prev: Net,
) -> DigitSliceOutputs:
    """Build one Figure-2-style digit slice.

    Truth table implemented (p = x_i + y_i, h' = h_{i-1}):

    ========  ====  ===========  ==========
    p         h'    carry f_i    interim s_i
    ========  ====  ===========  ==========
    +2        any   +1           0
    +1        1     +1           -1
    +1        0     0            +1
    0         any   0            0
    -1        1     0            -1
    -1        0     -1           +1
    -2        any   -1           0
    ========  ====  ===========  ==========

    and z_i = s_i + f_{i-1}, which the choice of s_i guarantees stays in
    {-1, 0, 1}.
    """
    # h_i: both digits of this position are non-negative; g_i: both
    # non-positive.  Single NOR each.
    h = circuit.nor_(xn, yn)
    g = circuit.nor_(xp, yp)

    # Digit-sum indicators, each two logic levels from the inputs:
    #   p == +1  <=>  exactly one positive bit set and no negative bits,
    #   p == -1  <=>  exactly one negative bit set and no positive bits,
    #   |p| == 1 <=>  exactly one of the two digits is non-zero.
    p_pos_one = circuit.and_(circuit.xor_(xp, yp), h)
    p_neg_one = circuit.and_(circuit.xor_(xn, yn), g)
    p_one_mag = circuit.xor_(circuit.or_(xp, xn), circuit.or_(yp, yn))

    # Intermediate carry f_i (function of digit i and h_{i-1}).
    carry_plus = circuit.or_(
        circuit.and_(xp, yp),                 # p == +2
        circuit.and_(p_pos_one, h_prev),      # p == +1, no -1 can arrive
    )
    carry_minus = circuit.or_(
        circuit.and_(xn, yn),                          # p == -2
        circuit.and_(p_neg_one, circuit.not_(h_prev)),  # p == -1, -1 may arrive
    )

    # Interim sum s_i: non-zero iff |p| == 1; negative iff h_{i-1}.
    s_plus = circuit.and_(p_one_mag, circuit.not_(h_prev))
    s_minus = circuit.and_(p_one_mag, h_prev)

    # z_i = s_i + f_{i-1}.  The slice invariant rules out (s, f_{i-1}) being
    # (+1, +1) or (-1, -1), so z == +1 iff something pulls up and nothing
    # pulls down (and symmetrically for -1).
    sum_plus = circuit.and_(
        circuit.or_(s_plus, carry_plus_prev),
        circuit.nor_(s_minus, carry_minus_prev),
    )
    sum_minus = circuit.and_(
        circuit.or_(s_minus, carry_minus_prev),
        circuit.nor_(s_plus, carry_plus_prev),
    )
    return DigitSliceOutputs(
        h=h,
        carry_plus=carry_plus,
        carry_minus=carry_minus,
        sum_plus=sum_plus,
        sum_minus=sum_minus,
    )


def build_rb_digit_slice() -> Circuit:
    """A single standalone digit slice (for inspection and slice-level tests).

    Inputs: this digit's four encoding bits (xp, xn, yp, yn), the previous
    slice's ``h_prev``, and the previous intermediate carry pair.  Outputs:
    ``h``, ``carry_plus``, ``carry_minus``, ``sum_plus``, ``sum_minus``.
    """
    circuit = Circuit("rb_digit_slice")
    outs = _digit_slice(
        circuit,
        circuit.input("xp"), circuit.input("xn"),
        circuit.input("yp"), circuit.input("yn"),
        circuit.input("h_prev"),
        circuit.input("cp_prev"), circuit.input("cn_prev"),
    )
    circuit.output("h", outs.h)
    circuit.output("carry_plus", outs.carry_plus)
    circuit.output("carry_minus", outs.carry_minus)
    circuit.output("sum_plus", outs.sum_plus)
    circuit.output("sum_minus", outs.sum_minus)
    return circuit


def build_rb_adder(width: int) -> Circuit:
    """An N-digit redundant binary adder.

    Inputs: ``xp/xn/yp/yn[0..N-1]`` (digit encodings, LSD first).  Outputs:
    ``zp/zn[0..N-1]`` plus the carry-out digit pair ``cout_plus`` /
    ``cout_minus``.  Critical-path delay is constant in N.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    circuit = Circuit(f"rb_adder{width}")
    xp = circuit.input_bus("xp", width)
    xn = circuit.input_bus("xn", width)
    yp = circuit.input_bus("yp", width)
    yn = circuit.input_bus("yn", width)

    zero = circuit.const(0)
    h_prev = circuit.const(1)  # below digit 0 counts as non-negative
    carry_plus_prev = zero
    carry_minus_prev = zero
    sum_plus: list[Net] = []
    sum_minus: list[Net] = []
    for i in range(width):
        outs = _digit_slice(
            circuit, xp[i], xn[i], yp[i], yn[i],
            h_prev, carry_plus_prev, carry_minus_prev,
        )
        sum_plus.append(outs.sum_plus)
        sum_minus.append(outs.sum_minus)
        h_prev = outs.h
        carry_plus_prev = outs.carry_plus
        carry_minus_prev = outs.carry_minus

    circuit.output_bus("zp", sum_plus)
    circuit.output_bus("zn", sum_minus)
    circuit.output("cout_plus", carry_plus_prev)
    circuit.output("cout_minus", carry_minus_prev)
    return circuit
