"""RB -> two's-complement format converter (paper §3.2, §3.4).

The conversion is the subtraction ``X+ - X-`` with full carry propagation,
so the converter is just a CLA-class subtractor over the two component
words.  Its delay tracks the CLA's — which is exactly why the paper
charges two pipeline cycles for format conversion while the RB add itself
takes one.
"""

from __future__ import annotations

from repro.circuits.cla import build_cla_subtractor
from repro.circuits.gates import Circuit


def build_rb_to_tc_converter(width: int) -> Circuit:
    """An N-digit RB to N-bit TC converter.

    Inputs: ``a[0..N-1]`` (the X+ component) and ``b[0..N-1]`` (the X-
    component).  Output: ``sum`` = the two's-complement bit pattern
    (wrapped modulo 2**N, as the hardware subtractor produces).
    """
    circuit = build_cla_subtractor(width)
    circuit.name = f"rb_to_tc{width}"
    return circuit
