"""Ripple-carry adder: the linear-depth baseline for the delay sweeps."""

from __future__ import annotations

from repro.circuits.gates import Circuit, Net


def full_adder(circuit: Circuit, a: Net, b: Net, cin: Net) -> tuple[Net, Net]:
    """One full-adder cell; returns (sum, carry-out)."""
    axb = circuit.xor_(a, b)
    total = circuit.xor_(axb, cin)
    carry = circuit.or_(circuit.and_(a, b), circuit.and_(axb, cin))
    return total, carry


def build_ripple_adder(width: int) -> Circuit:
    """An N-bit ripple-carry adder with inputs a, b and cin.

    Outputs: ``sum[0..N-1]`` and ``cout``.  Critical path grows linearly
    with width — the worst case the CLA and RB adders are measured against.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    circuit = Circuit(f"ripple{width}")
    a = circuit.input_bus("a", width)
    b = circuit.input_bus("b", width)
    carry = circuit.input("cin")
    sums = []
    for i in range(width):
        total, carry = full_adder(circuit, a[i], b[i], carry)
        sums.append(total)
    circuit.output_bus("sum", sums)
    circuit.output("cout", carry)
    return circuit
