"""Gate-level netlist models for the paper's delay arguments (§3.4, §3.6).

The paper's case for redundant binary adders is a circuit-level one: an RB
adder's critical path is a short, *width-independent* chain (seven
transistors in their design), while a carry-lookahead adder's critical path
grows logarithmically with width, and the RB->TC format converter costs a
full carry-propagating subtraction.  This package rebuilds those netlists
in a small gate framework so the delay comparison can be regenerated:

* :mod:`repro.circuits.gates` — netlist framework: typed gates with
  normalized delays, functional evaluation, critical-path extraction.
* :mod:`repro.circuits.ripple` — ripple-carry adder (linear depth).
* :mod:`repro.circuits.cla` — parallel-prefix carry-lookahead adder
  (Kogge-Stone form; logarithmic depth).
* :mod:`repro.circuits.carry_select` — carry-select adder.
* :mod:`repro.circuits.rb_adder` — the Figure 2 digit slice and full RB
  adder (constant depth).
* :mod:`repro.circuits.converter` — RB -> TC format converter (a CLA-class
  subtraction, hence the 2-cycle conversion latency).
* :mod:`repro.circuits.sam` — sum-addressed-memory decoder: per-word-line
  carry-free equality test (§3.6).
* :mod:`repro.circuits.dual_bit` — dual-bit full-adder ripple chain
  (halved carry chain; arXiv:1704.07619 family).
* :mod:`repro.circuits.early_output` — mux-select (Manchester) carry chain
  (arXiv:1807.09762 / 1706.04487 family).
* :mod:`repro.circuits.hybrid` — hybrid carry-select/CLA adder
  (arXiv:1810.01115 family).
* :mod:`repro.circuits.analysis` — delay sweeps used by the §3.4 benchmark.
* :mod:`repro.circuits.verify` — BDD-based formal equivalence gate: every
  netlist above is *proven* equal to its arithmetic specification.
"""

from repro.circuits.analysis import adder_delay_table, critical_path_delay
from repro.circuits.carry_select import build_carry_select_adder
from repro.circuits.cla import build_cla_adder
from repro.circuits.converter import build_rb_to_tc_converter
from repro.circuits.dual_bit import build_dual_bit_adder
from repro.circuits.early_output import build_early_output_adder
from repro.circuits.gates import Circuit, GateKind, Net
from repro.circuits.hybrid import build_hybrid_select_cla_adder
from repro.circuits.rb_adder import build_rb_adder, build_rb_digit_slice
from repro.circuits.ripple import build_ripple_adder
from repro.circuits.sam import build_sam_decoder, sam_match
from repro.circuits.verify import (
    EquivalenceResult,
    NETLIST_SPECS,
    assert_verified,
    build_mutant_ripple_adder,
    check_circuit,
    check_netlist,
    verify_library,
)

__all__ = [
    "Circuit",
    "GateKind",
    "Net",
    "build_ripple_adder",
    "build_cla_adder",
    "build_carry_select_adder",
    "build_dual_bit_adder",
    "build_early_output_adder",
    "build_hybrid_select_cla_adder",
    "build_rb_adder",
    "build_rb_digit_slice",
    "build_rb_to_tc_converter",
    "build_sam_decoder",
    "build_mutant_ripple_adder",
    "sam_match",
    "critical_path_delay",
    "adder_delay_table",
    "EquivalenceResult",
    "NETLIST_SPECS",
    "assert_verified",
    "check_circuit",
    "check_netlist",
    "verify_library",
]
