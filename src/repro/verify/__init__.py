"""Differential testing and invariant auditing for the simulator.

PR 3 introduced three pairs of "must be bit-identical" execution modes
(cycle-skip vs no-skip, serial vs process-pool sweeps, bitwise vs
per-digit RB addition) plus one implicit pair (a reused
:class:`~repro.core.machine.Machine` vs a fresh one).  Each was pinned
by a handful of hand-picked cases; this package verifies them
systematically:

* :mod:`repro.verify.fuzz` — a seeded random-program generator that
  emits well-formed, terminating kernels through the regular two-pass
  assembler, weighted over the Table 1 instruction classes;
* :mod:`repro.verify.differential` — paired runs of every equivalence
  pair over fuzzed programs, reporting the first diverging field of
  :class:`~repro.core.statistics.SimStats` (CPI-stack buckets and
  metric counters included, not just IPC);
* :mod:`repro.verify.invariants` — metamorphic properties of real
  sweeps: CPI stacks sum exactly to cycles, deleting bypass levels
  never raises IPC (Fig. 14), Ideal is fastest and Baseline slowest of
  the four machine models (Figs. 9-12), and the timing simulator's
  final architectural state matches shadow functional execution;
* :mod:`repro.verify.check` — the ``repro check`` orchestration layer
  and its JSON report.
"""

from repro.verify.check import CheckReport, run_check
from repro.verify.differential import Divergence, first_divergence
from repro.verify.fuzz import PROFILES, fuzz_program, fuzz_source
from repro.verify.invariants import Violation

__all__ = [
    "CheckReport",
    "Divergence",
    "PROFILES",
    "Violation",
    "first_divergence",
    "fuzz_program",
    "fuzz_source",
    "run_check",
]
