"""Deterministic fault injection for resilience tests (``fault:`` workloads).

The service and runner claim to survive worker crashes; proving that in
a test needs a way to *make* a worker crash, deterministically, inside
the child process — monkeypatching does not cross the process boundary,
but workload names do (pool workers rebuild programs from the name via
:func:`repro.workloads.suite.build`).  A fault workload name

    ``fault:<mode>:<token>:<inner-workload>``

wraps any buildable workload (suite kernels, ``fuzz:...`` programs, even
another ``fault:``) and injects the fault the *first* time the name is
built, then behaves exactly like the inner workload on every subsequent
build.  First-ness is tracked with a marker file named ``<token>``
inside the directory named by the ``REPRO_FAULT_DIR`` environment
variable — the environment crosses the process-pool boundary, and a
marker file survives the killed worker.  When ``REPRO_FAULT_DIR`` is
unset the fault is disarmed and the inner workload builds normally, so
a stray fault name in a result cache can never hurt a later run.

Modes
-----
``kill-once``
    SIGKILL the building process (a hard worker death: the process pool
    sees a vanished worker and breaks, which is exactly the failure the
    ``repro serve`` degradation path has to absorb).
``raise-once``
    Raise :class:`InjectedFault` (a clean in-worker exception: the pool
    survives, only this job fails).
``slow-once:<ms>``
    Sleep ``<ms>`` milliseconds before building (drives batch-timeout
    paths without killing anything).
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time

from repro.isa.program import Program
from repro.obs.log import get_logger

log = get_logger(__name__)

FAULT_PREFIX = "fault:"

#: Environment variable naming the armed marker directory.
FAULT_DIR_ENV = "REPRO_FAULT_DIR"

_MODES = ("kill-once", "raise-once", "slow-once")


class InjectedFault(RuntimeError):
    """The exception raised by ``raise-once`` fault workloads."""


def fault_name(mode: str, token: str, workload: str) -> str:
    """Compose a fault workload name, validating mode and token."""
    base = mode.split(":", 1)[0]
    if base not in _MODES:
        raise ValueError(f"unknown fault mode {mode!r}; choices: {_MODES}")
    if not token or "/" in token or ":" in token:
        raise ValueError(f"fault token must be a plain filename, got {token!r}")
    return f"{FAULT_PREFIX}{mode}:{token}:{workload}"


def is_fault_name(name: str) -> bool:
    return name.startswith(FAULT_PREFIX)


def parse_fault_name(name: str) -> tuple[str, str, str]:
    """Split ``fault:<mode>:<token>:<inner>`` -> (mode, token, inner).

    ``<inner>`` may itself contain colons (``fuzz:mixed:3``), so only the
    leading fields are split off.  ``slow-once`` carries its millisecond
    argument in the mode field (``slow-once:250``).
    """
    if not is_fault_name(name):
        raise ValueError(f"not a fault workload name: {name!r}")
    body = name[len(FAULT_PREFIX):]
    parts = body.split(":")
    if parts and parts[0] == "slow-once" and len(parts) >= 2 and parts[1].isdigit():
        mode = ":".join(parts[:2])
        rest = parts[2:]
    else:
        mode = parts[0] if parts else ""
        rest = parts[1:]
    if mode.split(":", 1)[0] not in _MODES or len(rest) < 2:
        raise ValueError(
            f"bad fault name {name!r}; expected fault:<mode>:<token>:<workload>"
        )
    token, inner = rest[0], ":".join(rest[1:])
    return mode, token, inner


def _fire_once(token: str) -> bool:
    """True exactly once per (armed directory, token): arms the marker.

    Uses O_CREAT|O_EXCL so the check-and-set is atomic even when several
    pool workers race to build the same name.
    """
    fault_dir = os.environ.get(FAULT_DIR_ENV, "").strip()
    if not fault_dir:
        return False  # disarmed
    marker = os.path.join(fault_dir, token)
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError as exc:
        log.warning("fault marker %s unusable (%s); fault disarmed", marker, exc)
        return False
    os.close(fd)
    return True


def build_fault(name: str) -> Program:
    """Build a ``fault:`` workload, injecting its fault on first build."""
    mode, token, inner = parse_fault_name(name)
    if _fire_once(token):
        log.warning("injecting fault %s (token %s) in pid %d", mode, token, os.getpid())
        if mode == "kill-once":
            os.kill(os.getpid(), signal.SIGKILL)
        elif mode == "raise-once":
            raise InjectedFault(f"injected fault for {name!r}")
        else:  # slow-once:<ms>
            time.sleep(int(mode.split(":", 1)[1]) / 1000.0)
    from repro.workloads.suite import build

    program = build(inner)
    # The program must carry the *fault* name: stats/workload and cache
    # keys are derived from it, and a retry must hit the same cache slot.
    return dataclasses.replace(program, name=name)
