"""``repro check``: run the fuzzer, every differential pair, and the audit.

One :func:`run_check` call produces a :class:`CheckReport` with one
section per verification layer:

* ``fuzz`` — every (profile, seed) program generated and assembled;
* ``formal:adders`` — every gate-level netlist in
  :mod:`repro.circuits` proven equal to its arithmetic specification by
  the BDD checker (:mod:`repro.circuits.verify`), plus the deliberately
  broken mutant adder which the checker must *reject*;
* ``differential:engine`` — the SoA cycle engine vs the object reference
  engine, bit for bit over the golden corpus (four machines × three
  kernels × both widths) plus at least ten fuzzed kernels;
* ``differential:batch`` — the batched lockstep engine
  (:func:`~repro.core.engine.run_soa_batch`) vs solo runs: the golden
  grid batched per kernel (mixed widths, alternating cycle-skip) and the
  fuzzed kernels on the check configs;
* ``differential:cycle-skip`` / ``differential:timeline-skip`` /
  ``differential:machine-reuse`` / ``differential:run-matrix`` /
  ``differential:rb-adder`` / ``differential:gate-adders`` — the other
  equivalence pairs over the fuzzed programs (first diverging
  SimStats/timeline field per case);
* ``invariant:cpi-conservation`` — every statistics object produced
  anywhere in the check must have a CPI stack summing exactly to its
  cycles;
* ``invariant:machine-ordering`` — Ideal fastest / Baseline slowest on
  real suite workloads (Figs. 9-12 shape);
* ``invariant:bypass-monotonicity`` — the Fig. 14 deletion lattice;
* ``invariant:shadow-state`` — timing-simulator architectural state vs
  shadow functional execution, plus the redundant-datapath checks.

``quick=True`` bounds the fuzz seeds and workload list for CI; the full
mode widens everything.
"""

from __future__ import annotations

import tempfile
import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.presets import (
    FIG14_VARIANTS,
    adder_designs,
    adder_machine,
    all_paper_machines,
    baseline,
    ideal,
    ideal_limited,
    rb_limited,
    resolve_machine,
)
from repro.core.statistics import SimStats
from repro.obs.log import get_logger
from repro.verify import differential, invariants
from repro.verify.fuzz import PROFILES, fuzz_name, fuzz_program
from repro.workloads.suite import build

log = get_logger(__name__)

#: Schema version of the JSON report.
REPORT_VERSION = 1

#: Suite workloads audited for the machine-ordering invariant.
QUICK_ORDERING_WORKLOADS = ["ijpeg", "li"]
FULL_ORDERING_WORKLOADS = ["ijpeg", "li", "compress", "gzip", "mcf"]

#: Workload for the Fig. 14 bypass-deletion lattice audit.
MONOTONICITY_WORKLOAD = "li"

#: The golden-corpus cross product (tests/golden/) over which the SoA and
#: object engines must agree bit for bit, in quick and full mode alike.
ENGINE_MACHINES = ["baseline", "staggered", "rb-limited", "rb-full"]
ENGINE_KERNELS = ["ijpeg", "li", "compress"]
ENGINE_WIDTHS = [4, 8]

#: Minimum number of fuzzed kernels the engine differential must cover.
ENGINE_FUZZ_MIN = 10


@dataclass
class Section:
    """One verification layer's outcome."""

    name: str
    cases: int = 0
    failures: list[dict] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "cases": self.cases,
            "failures": self.failures,
            "ok": self.ok,
            "seconds": round(self.seconds, 3),
        }


@dataclass
class CheckReport:
    """Outcome of one ``repro check`` invocation."""

    quick: bool
    sections: list[Section] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(section.ok for section in self.sections)

    def total_cases(self) -> int:
        return sum(section.cases for section in self.sections)

    def total_failures(self) -> int:
        return sum(len(section.failures) for section in self.sections)

    def as_dict(self) -> dict:
        return {
            "version": REPORT_VERSION,
            "quick": self.quick,
            "ok": self.ok,
            "cases": self.total_cases(),
            "failures": self.total_failures(),
            "sections": [section.as_dict() for section in self.sections],
        }

    def summary(self) -> str:
        lines = []
        for section in self.sections:
            status = "ok" if section.ok else f"{len(section.failures)} FAILED"
            lines.append(
                f"  {section.name:<34} {section.cases:>5} cases  "
                f"{section.seconds:>6.1f}s  {status}"
            )
            for failure in section.failures[:5]:
                lines.append(f"      {failure.get('detail') or failure}")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"{verdict}: {self.total_cases()} cases, "
            f"{self.total_failures()} failures"
        )
        return "\n".join(lines)


def persist_failing_fuzz_sources(
    report: "CheckReport", directory: Path | str
) -> list[Path]:
    """Write the assembly of every fuzz program a section failed on.

    A ``fuzz:<profile>:<seed>`` name in a failure is only replayable by
    whoever knows the suite's fuzz build hook; the divergence artifact
    should stand alone.  For each distinct fuzz workload appearing in
    any failure, the deterministic :func:`~repro.verify.fuzz.fuzz_source`
    text is written next to the report as
    ``fuzz-<profile>-<seed>.asm`` (assemblable by ``repro run <path>``).
    Returns the written paths; generation problems are logged, never
    raised — persistence must not mask the original failure.
    """
    from repro.verify.fuzz import fuzz_source, is_fuzz_name, parse_fuzz_name

    directory = Path(directory)
    names: list[str] = []
    for section in report.sections:
        for failure in section.failures:
            for key in ("workload", "program"):
                name = failure.get(key)
                if (
                    isinstance(name, str) and is_fuzz_name(name)
                    and name not in names
                ):
                    names.append(name)
    written: list[Path] = []
    for name in names:
        try:
            profile, seed = parse_fuzz_name(name)
            source = fuzz_source(profile, seed)
        except Exception as exc:
            log.error("could not re-derive %s for persistence: %r", name, exc)
            continue
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"fuzz-{profile}-{seed}.asm"
        path.write_text(source, encoding="utf-8")
        written.append(path)
        log.info("persisted failing fuzz program %s -> %s", name, path)
    return written


class _Timer:
    """Times a section and absorbs an audit crash as a section failure.

    A verification layer that *raises* — instead of returning violations —
    must not abort the whole check: the remaining sections still run, the
    report is still returned (so ``repro check -o`` still writes it), and
    the crashed section reports a failure, which makes the exit code
    nonzero.  ``KeyboardInterrupt``/``SystemExit`` still propagate.
    """

    def __init__(self, section: Section) -> None:
        self.section = section

    def __enter__(self) -> Section:
        self._started = time.perf_counter()
        return self.section

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.section.seconds = time.perf_counter() - self._started
        if exc is None or not isinstance(exc, Exception):
            return False
        self.section.cases = max(self.section.cases, 1)
        self.section.failures.append({
            "section": self.section.name,
            "detail": f"audit crashed: {exc!r}",
        })
        log.error("section %s crashed: %r", self.section.name, exc)
        return True


def run_check(
    quick: bool = True,
    seeds: Sequence[int] | None = None,
    profiles: Sequence[str] | None = None,
    width: int = 4,
    jobs: int = 2,
    workdir: Path | None = None,
    adder_trials: int | None = None,
) -> CheckReport:
    """Run every verification layer and return the combined report."""
    if seeds is None:
        seeds = range(2) if quick else range(8)
    if profiles is None:
        profiles = sorted(PROFILES)
    if adder_trials is None:
        adder_trials = 2_000 if quick else 20_000
    # The Pareto adder presets (proven-netlist machines) ride the fuzz
    # grids alongside the paper machines so `repro check` exercises the
    # adder design space end to end, not just the paper's two adders.
    designs = adder_designs()
    configs = [
        rb_limited(width), ideal(width),
        adder_machine(designs["hybrid_select_cla"], width),
    ]
    if not quick:
        configs.insert(0, baseline(width))
        configs.append(adder_machine(designs["rb"], width))
    report = CheckReport(quick=quick)
    all_stats: list[SimStats] = []

    # ---- fuzz: generate + assemble every (profile, seed) kernel ----------
    fuzz_section = Section("fuzz")
    report.sections.append(fuzz_section)
    programs = []
    with _Timer(fuzz_section):
        for profile in profiles:
            for seed in seeds:
                fuzz_section.cases += 1
                try:
                    programs.append(fuzz_program(profile, seed))
                except Exception as exc:
                    fuzz_section.failures.append({
                        "program": fuzz_name(profile, seed),
                        "detail": f"generation/assembly failed: {exc!r}",
                    })
    log.info("fuzz: %d programs generated", len(programs))

    # ---- formal: BDD equivalence gate over the netlist library -----------
    section = Section("formal:adders")
    report.sections.append(section)
    with _Timer(section):
        from repro.circuits.verify import (
            build_mutant_ripple_adder,
            check_circuit,
            verify_library,
        )

        formal_width = 32 if quick else 64
        for name, result in verify_library(width=formal_width).items():
            section.cases += 1
            if not result.equivalent:
                section.failures.append({
                    "netlist": name,
                    "detail": result.describe(),
                })
        # Negative control: the checker must reject the broken adder.
        section.cases += 1
        mutant = check_circuit(
            build_mutant_ripple_adder(formal_width), "tc_adder", formal_width
        )
        if mutant.equivalent:
            section.failures.append({
                "netlist": "mutant_ripple",
                "detail": "checker accepted the deliberately broken adder "
                          "(dropped carry-propagate term) — the gate is "
                          "vacuous",
            })

    # ---- differential: SoA engine vs object engine -----------------------
    section = Section("differential:engine")
    report.sections.append(section)
    with _Timer(section):
        # The full golden corpus — the paper's four machines, three
        # kernels, both widths — always runs, quick mode included: this
        # is the section that licenses every other layer to run on the
        # fast engine.
        for kernel in ENGINE_KERNELS:
            program = build(kernel)
            for machine_name in ENGINE_MACHINES:
                for engine_width in ENGINE_WIDTHS:
                    section.cases += 1
                    found = differential.diff_engines(
                        resolve_machine(machine_name, engine_width), program
                    )
                    if found is not None:
                        section.failures.append(found.as_dict())
        # At least ENGINE_FUZZ_MIN fuzzed kernels, cycling the check
        # configs and alternating the cycle-skip flag so both loop modes
        # of both engines face irregular programs.
        engine_fuzz = list(programs)
        extra_seed = 1000
        while len(engine_fuzz) < ENGINE_FUZZ_MIN:
            engine_fuzz.append(fuzz_program("mixed", extra_seed))
            extra_seed += 1
        for index, program in enumerate(engine_fuzz):
            section.cases += 1
            found = differential.diff_engines(
                configs[index % len(configs)],
                program,
                cycle_skip=index % 2 == 0,
            )
            if found is not None:
                section.failures.append(found.as_dict())

    # ---- differential: batched vs solo simulation ------------------------
    section = Section("differential:batch")
    report.sections.append(section)
    with _Timer(section):
        # The full golden grid per kernel in ONE mixed-width batch: all
        # four paper machines at both widths share the kernel's decode,
        # with cycle-skip alternating across batch members so both loop
        # modes are exercised inside one call.
        grid = [
            resolve_machine(machine_name, engine_width)
            for engine_width in ENGINE_WIDTHS
            for machine_name in ENGINE_MACHINES
        ]
        # Two Pareto presets join the golden batch: the batch engine must
        # share work correctly across adder-derived configs too.
        grid.append(adder_machine(designs["early_output"], 4))
        grid.append(adder_machine(designs["rb"], 8))
        for kernel in ENGINE_KERNELS:
            program = build(kernel)
            section.cases += len(grid)
            section.failures.extend(d.as_dict() for d in (
                differential.diff_batch(
                    grid, program,
                    cycle_skip=[i % 2 == 0 for i in range(len(grid))],
                )
            ))
        # Fuzzed kernels stress irregular programs through the shared
        # plan construction, on the smaller check-config batch.
        for index, program in enumerate(programs):
            section.cases += len(configs)
            section.failures.extend(d.as_dict() for d in (
                differential.diff_batch(
                    configs, program,
                    cycle_skip=[
                        (index + i) % 2 == 0 for i in range(len(configs))
                    ],
                )
            ))

    # ---- differential: cycle-skip ----------------------------------------
    section = Section("differential:cycle-skip")
    report.sections.append(section)
    with _Timer(section):
        for program in programs:
            for config in configs:
                section.cases += 1
                found = differential.diff_cycle_skip(config, program)
                if found is not None:
                    section.failures.append(found.as_dict())

    # ---- differential: timeline skip-replay ------------------------------
    section = Section("differential:timeline-skip")
    report.sections.append(section)
    with _Timer(section):
        for program in programs:
            for config in configs:
                section.cases += 1
                found = differential.diff_timeline_skip(config, program)
                if found is not None:
                    section.failures.append(found.as_dict())

    # ---- differential: machine reuse -------------------------------------
    section = Section("differential:machine-reuse")
    report.sections.append(section)
    with _Timer(section):
        for index, program in enumerate(programs):
            warmup = programs[(index + 1) % len(programs)]
            for config in configs:
                section.cases += 1
                found = differential.diff_machine_reuse(config, warmup, program)
                if found is not None:
                    section.failures.append(found.as_dict())

    # ---- differential: serial vs parallel run_matrix ---------------------
    section = Section("differential:run-matrix")
    report.sections.append(section)
    with _Timer(section):
        matrix_workloads = [program.name for program in programs]
        if workdir is None:
            with tempfile.TemporaryDirectory(prefix="repro-check-") as tmp:
                found = differential.diff_run_matrix(
                    configs, matrix_workloads, Path(tmp), jobs=jobs
                )
        else:
            found = differential.diff_run_matrix(
                configs, matrix_workloads, Path(workdir), jobs=jobs
            )
        section.cases = len(configs) * len(matrix_workloads)
        section.failures.extend(d.as_dict() for d in found)

    # ---- differential: RB adder bitwise vs per-digit ---------------------
    section = Section("differential:rb-adder")
    report.sections.append(section)
    with _Timer(section):
        section.cases = adder_trials * 2  # one add + one sub per trial
        for seed in seeds:
            found = differential.diff_rb_adder(seed, trials=adder_trials)
            section.failures.extend(d.as_dict() for d in found)

    # ---- differential: gate-level TC adder netlists vs integer add -------
    section = Section("differential:gate-adders")
    report.sections.append(section)
    with _Timer(section):
        gate_trials = 256 if quick else 1024
        for seed in seeds:
            section.cases += gate_trials
            found = differential.diff_gate_adders(seed, trials=gate_trials)
            section.failures.extend(d.as_dict() for d in found)

    # ---- invariant: machine ordering on real workloads -------------------
    section = Section("invariant:machine-ordering")
    report.sections.append(section)
    with _Timer(section):
        from repro.core.machine import Machine

        ordering_workloads = (
            QUICK_ORDERING_WORKLOADS if quick else FULL_ORDERING_WORKLOADS
        )
        machines = all_paper_machines(width)
        for workload in ordering_workloads:
            program = build(workload)
            per_machine = {}
            for config in machines:
                stats = Machine(config).run(program)
                per_machine[config.name] = stats
                all_stats.append(stats)
            section.cases += len(per_machine)
            section.failures.extend(v.as_dict() for v in (
                invariants.audit_machine_ordering(
                    per_machine,
                    ideal_name=ideal(width).name,
                    baseline_name=baseline(width).name,
                    workload=workload,
                )
            ))

    # ---- invariant: Fig. 14 bypass-deletion monotonicity -----------------
    section = Section("invariant:bypass-monotonicity")
    report.sections.append(section)
    with _Timer(section):
        from repro.core.machine import Machine

        program = build(MONOTONICITY_WORKLOAD)
        full = Machine(ideal(width)).run(program)
        all_stats.append(full)
        by_removed = {}
        for removed in FIG14_VARIANTS:
            stats = Machine(ideal_limited(width, removed)).run(program)
            by_removed[removed] = stats
            all_stats.append(stats)
        section.cases = len(by_removed) + 1
        section.failures.extend(v.as_dict() for v in (
            invariants.audit_bypass_monotonicity(
                by_removed, full, MONOTONICITY_WORKLOAD
            )
        ))

    # ---- invariant: shadow functional execution --------------------------
    section = Section("invariant:shadow-state")
    report.sections.append(section)
    with _Timer(section):
        shadow_config = rb_limited(width)
        shadow_programs = list(programs)
        shadow_programs.append(build("compress" if quick else "vortex"))
        for program in shadow_programs:
            section.cases += 1
            section.failures.extend(v.as_dict() for v in (
                invariants.audit_shadow_state(shadow_config, program)
            ))

    # ---- invariant: CPI conservation over everything run above -----------
    section = Section("invariant:cpi-conservation")
    report.sections.append(section)
    with _Timer(section):
        for stats in all_stats:
            section.cases += 1
            violation = invariants.audit_cpi_stack(stats)
            if violation is not None:
                section.failures.append(violation.as_dict())

    return report
