"""Seeded random-program fuzzer: well-formed kernels for differential runs.

Every generated program is

* **well-formed** — emitted through :class:`~repro.isa.assembler.ProgramBuilder`
  and assembled by the regular two-pass assembler, so the fuzzer cannot
  construct anything a hand-written kernel could not;
* **terminating** — the only backward branches are counted loops whose
  counter registers (r2 outer, r3 inner) no generated instruction ever
  writes, and every other branch is a data-dependent forward skip;
* **memory-safe by construction** — loads and stores address a
  dedicated ``.space`` arena either with literal in-range displacements
  or through a masked index register, so the cache behavior stays
  plausible (the functional memory itself is sparse and accepts any
  address);
* **deterministic** — a ``(profile, seed)`` pair fully determines the
  program, so a process-pool worker can rebuild it from its workload
  name alone (see :func:`build_fuzz` and the ``fuzz:`` hook in
  :func:`repro.workloads.suite.build`).

Profiles weight the generator over the Table 1 instruction classes:
``mixed`` approximates the paper's SPECint mix, ``branchy`` leans on
compares/conditional branches/cmovs, ``memory`` on loads and stores,
and ``serial`` chains results dependently (the RB adders' best case).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.isa.assembler import ProgramBuilder
from repro.isa.program import Program

#: Workload-name prefix understood by :func:`repro.workloads.suite.build`.
FUZZ_PREFIX = "fuzz:"

#: Size of the load/store arena (bytes); all generated addresses stay inside.
ARENA_BYTES = 4096

#: Registers the generator may freely read and write.
_SCRATCH = [f"r{n}" for n in (*range(4, 26), 27, 28, 29)]
#: r1 holds the arena base; r2/r3 are the loop counters; r26 is the
#: return-address register (written only by jsr); r30/r31 are sp/zero.
_BASE = "r1"
_OUTER = "r2"
_INNER = "r3"

_ARITH_OPS = ("add", "sub", "s4add", "s8add", "s4sub", "s8sub")
_CMOV_OPS = ("cmoveq", "cmovne", "cmovlt", "cmovge", "cmovle", "cmovgt",
             "cmovlbs", "cmovlbc")
_COMPARE_OPS = ("cmpeq", "cmplt", "cmple", "cmpult", "cmpule")
_LOGICAL_OPS = ("and", "bis", "xor", "bic", "ornot", "eqv")
_SHIFT_RIGHT_OPS = ("srl", "sra")
_BYTE_OPS = ("extb", "insb", "mskb", "zap")
_COUNT_OPS = ("ctlz", "cttz", "ctpop")
_COND_BRANCHES = ("beq", "bne", "blt", "bge", "ble", "bgt", "blbc", "blbs")
_FP_OPS = ("fadd", "fmul")


@dataclass(frozen=True)
class FuzzProfile:
    """One weighting of the generator over the instruction classes."""

    name: str
    description: str
    #: class name -> relative weight (classes: arith, shift_left, mul,
    #: cmov, compare, logical, shift_right, byte, count, load, store,
    #: branch, call, fp).
    weights: dict[str, float] = field(hash=False)
    body_len: tuple[int, int] = (12, 28)
    outer_iterations: tuple[int, int] = (15, 35)
    inner_iterations: tuple[int, int] = (3, 6)
    inner_loop_chance: float = 0.5
    helpers: tuple[int, int] = (0, 2)
    #: Probability that a source operand is the most recent destination
    #: (dependence-chain bias; 1.0 would be a pure serial chain).
    serial_bias: float = 0.35


PROFILES: dict[str, FuzzProfile] = {
    "mixed": FuzzProfile(
        name="mixed",
        description="Table 1-like SPECint mix: arith-heavy, ~1/4 memory",
        weights={
            "arith": 30, "shift_left": 3, "mul": 2, "cmov": 4, "compare": 7,
            "logical": 12, "shift_right": 4, "byte": 3, "count": 2,
            "load": 14, "store": 7, "branch": 9, "call": 2, "fp": 1,
        },
    ),
    "branchy": FuzzProfile(
        name="branchy",
        description="control-heavy: compares, forward skips, cmovs, calls",
        weights={
            "arith": 18, "shift_left": 2, "mul": 1, "cmov": 10, "compare": 14,
            "logical": 8, "shift_right": 2, "byte": 1, "count": 1,
            "load": 7, "store": 4, "branch": 26, "call": 5, "fp": 0,
        },
        body_len=(10, 20),
        inner_loop_chance=0.7,
        helpers=(1, 3),
    ),
    "memory": FuzzProfile(
        name="memory",
        description="load/store-heavy with masked-index addressing",
        weights={
            "arith": 16, "shift_left": 2, "mul": 1, "cmov": 2, "compare": 4,
            "logical": 8, "shift_right": 2, "byte": 2, "count": 1,
            "load": 30, "store": 22, "branch": 8, "call": 1, "fp": 0,
        },
        serial_bias=0.25,
    ),
    "serial": FuzzProfile(
        name="serial",
        description="dependence-chained arithmetic: the RB adders' best case",
        weights={
            "arith": 52, "shift_left": 4, "mul": 3, "cmov": 5, "compare": 6,
            "logical": 14, "shift_right": 3, "byte": 2, "count": 2,
            "load": 4, "store": 2, "branch": 3, "call": 0, "fp": 0,
        },
        serial_bias=0.85,
        inner_loop_chance=0.3,
    ),
}


def fuzz_name(profile: str, seed: int) -> str:
    """The workload name of one fuzzed program, e.g. ``fuzz:mixed:42``."""
    return f"{FUZZ_PREFIX}{profile}:{seed}"


def is_fuzz_name(name: str) -> bool:
    return name.startswith(FUZZ_PREFIX)


def parse_fuzz_name(name: str) -> tuple[str, int]:
    """Split ``fuzz:<profile>:<seed>`` into its parts (ValueError if not)."""
    if not is_fuzz_name(name):
        raise ValueError(f"not a fuzz workload name: {name!r}")
    rest = name[len(FUZZ_PREFIX):]
    profile, _, seed_text = rest.partition(":")
    if profile not in PROFILES:
        raise ValueError(
            f"unknown fuzz profile {profile!r}; known: {sorted(PROFILES)}"
        )
    try:
        seed = int(seed_text)
    except ValueError:
        raise ValueError(f"bad fuzz seed in {name!r}") from None
    return profile, seed


def build_fuzz(name: str) -> Program:
    """Rebuild the program a fuzz workload name denotes (any process)."""
    profile, seed = parse_fuzz_name(name)
    return fuzz_program(profile, seed)


class _Generator:
    """One deterministic program generation (state bundled for the emitters)."""

    def __init__(self, profile: FuzzProfile, seed: int) -> None:
        self.profile = profile
        # A string seed hashes identically in every process (unlike
        # hash(), which PYTHONHASHSEED randomizes), so a pool worker
        # rebuilding the program from its name gets the same bits.
        self.rng = random.Random(f"{profile.name}:{seed}")
        self.pb = ProgramBuilder(fuzz_name(profile.name, seed))
        self.last_dest: str | None = None
        self.helper_labels: list[str] = []
        classes = [name for name, weight in profile.weights.items() if weight > 0]
        self._classes = classes
        self._weights = [profile.weights[name] for name in classes]

    # -- operand selection --------------------------------------------------

    def _reg(self) -> str:
        return self.rng.choice(_SCRATCH)

    def _src(self) -> str:
        """A source operand: dependence-biased register or an immediate."""
        rng = self.rng
        if self.last_dest is not None and rng.random() < self.profile.serial_bias:
            return self.last_dest
        if rng.random() < 0.2:
            return f"#{rng.randint(-255, 255)}"
        return self._reg()

    def _dest(self) -> str:
        dest = self._reg()
        self.last_dest = dest
        return dest

    # -- per-class emitters -------------------------------------------------

    def _emit_arith(self) -> None:
        rng, pb = self.rng, self.pb
        if rng.random() < 0.15:
            # lda as constant/address generation (also an RB producer).
            pb.emit("lda", self._dest(), f"{rng.randint(-2048, 2047)}({self._reg()})")
            return
        pb.emit(rng.choice(_ARITH_OPS), self._src(), self._src(), self._dest())

    def _emit_shift_left(self) -> None:
        self.pb.emit("sll", self._src(), f"#{self.rng.randint(0, 63)}", self._dest())

    def _emit_mul(self) -> None:
        self.pb.emit("mul", self._src(), self._src(), self._dest())

    def _emit_cmov(self) -> None:
        self.pb.emit(self.rng.choice(_CMOV_OPS), self._src(), self._src(),
                     self._dest())

    def _emit_compare(self) -> None:
        self.pb.emit(self.rng.choice(_COMPARE_OPS), self._src(), self._src(),
                     self._dest())

    def _emit_logical(self) -> None:
        rng, pb = self.rng, self.pb
        roll = rng.random()
        if roll < 0.12:
            pb.emit("mov", self._reg(), self._dest())   # RB-transparent MOVE
        elif roll < 0.24:
            pb.emit("not", self._src(), self._dest())
        else:
            pb.emit(rng.choice(_LOGICAL_OPS), self._src(), self._src(),
                    self._dest())

    def _emit_shift_right(self) -> None:
        self.pb.emit(self.rng.choice(_SHIFT_RIGHT_OPS), self._src(),
                     f"#{self.rng.randint(0, 63)}", self._dest())

    def _emit_byte(self) -> None:
        self.pb.emit(self.rng.choice(_BYTE_OPS), self._src(),
                     f"#{self.rng.randint(0, 7)}", self._dest())

    def _emit_count(self) -> None:
        self.pb.emit(self.rng.choice(_COUNT_OPS), self._reg(), self._dest())

    def _arena_address(self) -> str:
        """An in-arena address operand, literal or via a masked index."""
        rng, pb = self.rng, self.pb
        if rng.random() < 0.5:
            return f"{8 * rng.randint(0, ARENA_BYTES // 8 - 1)}({_BASE})"
        # Masked computed index: idx & 0x...F8 is 8-aligned and in range.
        index = self._reg()
        temp = self._reg()
        pb.emit("and", index, f"#{(ARENA_BYTES - 8) & ~7}", temp)
        pb.emit("add", temp, _BASE, temp)
        return f"0({temp})"

    def _emit_load(self) -> None:
        address = self._arena_address()
        self.pb.emit(self.rng.choice(("ldq", "ldl")), self._dest(), address)

    def _emit_store(self) -> None:
        address = self._arena_address()
        self.pb.emit(self.rng.choice(("stq", "stl")), self._reg(), address)

    def _emit_branch(self) -> None:
        """A data-dependent forward skip over 1-3 simple instructions."""
        rng, pb = self.rng, self.pb
        skip = pb.fresh_label("skip")
        if rng.random() < 0.5:
            test = self._reg()
            pb.emit(rng.choice(_COMPARE_OPS), self._src(), self._src(), test)
        else:
            test = self._reg()
        pb.emit(rng.choice(_COND_BRANCHES), test, skip)
        for _ in range(rng.randint(1, 3)):
            self._emit_class(rng.choice(("arith", "logical", "compare")))
        pb.label(skip)

    def _emit_call(self) -> None:
        if not self.helper_labels:
            self._emit_arith()
            return
        self.pb.emit("jsr", self.rng.choice(self.helper_labels))

    def _emit_fp(self) -> None:
        rng, pb = self.rng, self.pb
        if rng.random() < 0.15:
            pb.emit("fdiv", self._src(), self._src(), self._dest())
        else:
            pb.emit(rng.choice(_FP_OPS), self._src(), self._src(), self._dest())

    def _emit_class(self, name: str) -> None:
        getattr(self, f"_emit_{name}")()

    def _emit_body(self, length: int) -> None:
        for _ in range(length):
            self._emit_class(
                self.rng.choices(self._classes, weights=self._weights)[0]
            )

    # -- whole-program skeleton ---------------------------------------------

    def generate(self) -> str:
        rng, pb, profile = self.rng, self.pb, self.profile
        helper_count = rng.randint(*profile.helpers)
        self.helper_labels = [pb.fresh_label("helper") for _ in range(helper_count)]

        pb.label("main")
        pb.emit("lda", _BASE, "arena")
        for reg in rng.sample(_SCRATCH, k=10):
            pb.emit("lda", reg, f"{rng.randint(-1024, 1023)}(zero)")
        pb.emit("lda", _OUTER, f"{rng.randint(*profile.outer_iterations)}(zero)")

        outer = pb.label("outer")
        self._emit_body(rng.randint(*profile.body_len))
        if rng.random() < profile.inner_loop_chance:
            inner = pb.fresh_label("inner")
            pb.emit("lda", _INNER, f"{rng.randint(*profile.inner_iterations)}(zero)")
            pb.label(inner)
            self._emit_body(rng.randint(2, 6))
            pb.emit("sub", _INNER, "#1", _INNER)
            pb.emit("bgt", _INNER, inner)
        pb.emit("sub", _OUTER, "#1", _OUTER)
        pb.emit("bgt", _OUTER, outer)
        pb.emit("halt")

        # Helpers live after the halt, so fall-through never enters them.
        # They write only scratch registers, and never call (r26 stays the
        # caller's return address until the ret consumes it).
        for label in self.helper_labels:
            pb.label(label)
            for _ in range(rng.randint(2, 4)):
                self._emit_class(rng.choice(("arith", "logical", "shift_right")))
            pb.emit("ret")

        pb.data_label("arena")
        pb.quad(*(rng.randint(-(1 << 40), 1 << 40) for _ in range(16)))
        pb.space(ARENA_BYTES - 16 * 8)
        return pb.source()


def fuzz_source(profile: str = "mixed", seed: int = 0) -> str:
    """The assembly source of one fuzzed kernel (deterministic)."""
    try:
        spec = PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown fuzz profile {profile!r}; known: {sorted(PROFILES)}"
        ) from None
    return _Generator(spec, seed).generate()


def fuzz_program(profile: str = "mixed", seed: int = 0) -> Program:
    """One fuzzed kernel, assembled through the regular two-pass assembler."""
    from repro.isa.assembler import assemble

    return assemble(fuzz_source(profile, seed), fuzz_name(profile, seed))
