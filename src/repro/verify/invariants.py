"""Metamorphic invariant auditor: properties every correct sweep satisfies.

The paper's conclusions are stated as *orderings and conservation laws*,
not absolute numbers — which makes them machine-checkable over any run:

* **CPI conservation** — the per-cycle stall attribution must account
  for every cycle exactly (the stack's components sum to ``cycles``);
* **bypass-deletion monotonicity** (Fig. 14) — removing a *superset* of
  bypass levels can never raise IPC: IPC(No-1,2) <= IPC(No-1) <= Ideal;
* **machine ordering** (Figs. 9-12) — per workload, the Ideal machine
  is fastest and the Baseline slowest of the four evaluated models;
* **architectural fidelity** — the timing simulator drives the same
  functional interpreter down the correct path as a pure shadow
  execution, so final registers, memory, and retired-instruction counts
  must match bit for bit, and the redundant-datapath shadow checks must
  all pass.

Each violated property is reported as a :class:`Violation` naming the
invariant, the runs involved, and the observed values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MachineConfig
from repro.core.machine import Machine
from repro.core.statistics import SimStats
from repro.isa.program import Program
from repro.isa.shadow import ShadowRBInterpreter
from repro.obs.explain import CPIStack
from repro.obs.log import get_logger

log = get_logger(__name__)


@dataclass
class Violation:
    """One broken invariant."""

    invariant: str
    subject: str        # machine(s) / workload the violation names
    detail: str

    def describe(self) -> str:
        return f"[{self.invariant}] {self.subject}: {self.detail}"

    def as_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "subject": self.subject,
            "detail": self.detail,
        }


def audit_cpi_stack(stats: SimStats) -> Violation | None:
    """The CPI stack's components must sum exactly to the run's cycles."""
    stack = CPIStack.from_stats(stats)
    try:
        stack.validate()
    except ValueError as exc:
        return Violation(
            invariant="cpi-conservation",
            subject=f"{stats.machine} on {stats.workload}",
            detail=str(exc),
        )
    return None


#: Relative IPC slack for the ordering audits.  Greedy select-N
#: scheduling is not monotone in machine capability: giving a machine an
#: extra bypass path or a shorter latency can reorder issue and lose a
#: handful of cycles downstream (RB-full beats Ideal on ``li`` by 8
#: cycles out of ~12.5k this way).  Table 3 never gives the stronger
#: machine a worse latency, so any inversion beyond a fraction of a
#: percent is a real modelling bug, not a scheduling artifact.
ORDERING_TOLERANCE = 0.002


def audit_machine_ordering(per_machine: dict[str, SimStats],
                           ideal_name: str, baseline_name: str,
                           workload: str,
                           tolerance: float = ORDERING_TOLERANCE) -> list[Violation]:
    """Figs. 9-12 shape: Ideal fastest, Baseline slowest, per workload."""
    violations = []
    ideal_ipc = per_machine[ideal_name].ipc
    baseline_ipc = per_machine[baseline_name].ipc
    for name, stats in per_machine.items():
        if stats.ipc > ideal_ipc * (1.0 + tolerance):
            violations.append(Violation(
                invariant="machine-ordering",
                subject=f"{name} on {workload}",
                detail=f"IPC {stats.ipc:.4f} exceeds {ideal_name}'s "
                       f"{ideal_ipc:.4f} (Ideal must be fastest)",
            ))
        if stats.ipc < baseline_ipc * (1.0 - tolerance):
            violations.append(Violation(
                invariant="machine-ordering",
                subject=f"{name} on {workload}",
                detail=f"IPC {stats.ipc:.4f} is below {baseline_name}'s "
                       f"{baseline_ipc:.4f} (Baseline must be slowest)",
            ))
    return violations


def audit_bypass_monotonicity(
    by_removed: dict[frozenset[int], SimStats], full_bypass: SimStats,
    workload: str,
    tolerance: float = ORDERING_TOLERANCE,
) -> list[Violation]:
    """Fig. 14 shape: deleting more bypass levels never raises IPC.

    ``by_removed`` maps each deleted-level set to its run; for every
    subset pair A ⊆ B, IPC(No-B) <= IPC(No-A), and every variant is
    bounded above by the full-bypass machine.  The same scheduling
    slack as :func:`audit_machine_ordering` applies.
    """
    violations = []
    for removed, stats in by_removed.items():
        if stats.ipc > full_bypass.ipc * (1.0 + tolerance):
            violations.append(Violation(
                invariant="bypass-monotonicity",
                subject=f"{stats.machine} on {workload}",
                detail=f"IPC {stats.ipc:.4f} exceeds full-bypass "
                       f"{full_bypass.machine}'s {full_bypass.ipc:.4f}",
            ))
    for removed_a, stats_a in by_removed.items():
        for removed_b, stats_b in by_removed.items():
            if removed_a < removed_b and stats_b.ipc > stats_a.ipc * (1.0 + tolerance):
                violations.append(Violation(
                    invariant="bypass-monotonicity",
                    subject=f"{stats_b.machine} vs {stats_a.machine} on {workload}",
                    detail=f"deleting {sorted(removed_b)} gives IPC "
                           f"{stats_b.ipc:.4f} > {stats_a.ipc:.4f} with only "
                           f"{sorted(removed_a)} deleted",
                ))
    return violations


def audit_shadow_state(config: MachineConfig, program: Program) -> list[Violation]:
    """Timing-simulator architectural state == shadow functional execution.

    Runs the timing machine and the lockstep integer+redundant shadow
    interpreter on the same program and demands: a clean shadow report
    (redundant and integer datapaths agree), identical retired/executed
    instruction counts, and bit-identical final registers, PC, and
    memory contents.
    """
    subject = f"{config.name} on {program.name}"
    machine = Machine(config)
    stats = machine.run(program)
    timing_state = machine.last_state
    shadow = ShadowRBInterpreter(program)
    report = shadow.run()
    violations = []
    if not report.clean:
        sample = "; ".join(repr(m) for m in report.mismatches[:3])
        violations.append(Violation(
            invariant="shadow-state",
            subject=subject,
            detail=f"{len(report.mismatches)} redundant-datapath "
                   f"mismatches, e.g. {sample}",
        ))
    if report.instructions != stats.instructions:
        violations.append(Violation(
            invariant="shadow-state",
            subject=subject,
            detail=f"shadow executed {report.instructions} instructions, "
                   f"timing simulator retired {stats.instructions}",
        ))
    if timing_state is None:
        violations.append(Violation(
            invariant="shadow-state", subject=subject,
            detail="machine exposed no final architectural state",
        ))
        return violations
    if timing_state.regs != shadow.state.regs:
        diff = [
            f"r{i}: timing={t:#x} shadow={s:#x}"
            for i, (t, s) in enumerate(zip(timing_state.regs, shadow.state.regs))
            if t != s
        ]
        violations.append(Violation(
            invariant="shadow-state",
            subject=subject,
            detail="final registers differ: " + "; ".join(diff[:4]),
        ))
    if timing_state.pc != shadow.state.pc:
        violations.append(Violation(
            invariant="shadow-state",
            subject=subject,
            detail=f"final PC differs: timing={timing_state.pc:#x} "
                   f"shadow={shadow.state.pc:#x}",
        ))
    if timing_state.memory.snapshot() != shadow.state.memory.snapshot():
        violations.append(Violation(
            invariant="shadow-state",
            subject=subject,
            detail="final memory contents differ",
        ))
    return violations
