"""Paired-run differential harness over the "bit-identical" execution modes.

Eight equivalence pairs are claimed by the simulator:

* ``engine`` — the structure-of-arrays cycle engine
  (:mod:`repro.core.engine`) vs the per-instruction object engine, over
  the serialized statistics *and* every interval-timeline row;
* ``batch`` — N configs advanced by one :func:`run_soa_batch` call
  (shared fetch probe, rename plans, steering columns) vs each config's
  solo run, statistics and timelines alike;
* ``cycle-skip`` — :meth:`Machine.run` with the event-driven fast-forward
  on vs off;
* ``timeline-skip`` — the interval timeline (:mod:`repro.obs.timeline`)
  captured with the fast-forward on vs off, row by row;
* ``machine-reuse`` — one :class:`Machine` reused across programs (the
  serial runner's behavior) vs a fresh machine per run (the pool
  worker's behavior);
* ``run-matrix`` — :meth:`SimulationRunner.run_matrix` serial vs fanned
  over a process pool;
* ``rb-adder`` — the word-parallel bitwise carry-free adder vs the
  per-digit :func:`~repro.rb.adder.interim_digit` reference;
* ``gate-adders`` — every gate-level two's-complement adder netlist
  (including the Pareto-sweep designs) vs plain integer addition, via
  packed word-parallel evaluation.

Each differential runs both sides and reports the **first diverging
field** of the serialized :class:`~repro.core.statistics.SimStats` —
which includes every CPI-stack bucket, distribution, histogram, and
metric counter, not just IPC — as a :class:`Divergence`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import MachineConfig
from repro.core.machine import Machine
from repro.core.statistics import SimStats
from repro.isa.program import Program
from repro.obs.log import get_logger
from repro.rb.adder import rb_add, rb_add_reference, rb_sub, rb_sub_reference
from repro.rb.number import RBNumber

log = get_logger(__name__)


def first_divergence(left: object, right: object, path: str = "") -> tuple[str, object, object] | None:
    """Depth-first earliest difference between two JSON-like values.

    Returns ``(path, left_value, right_value)`` for the first diverging
    leaf (dict keys visited in sorted order, so the answer is stable),
    or ``None`` when the structures are identical.
    """
    if isinstance(left, dict) and isinstance(right, dict):
        for key in sorted(set(left) | set(right), key=str):
            where = f"{path}.{key}" if path else str(key)
            if key not in left:
                return where, "<absent>", right[key]
            if key not in right:
                return where, left[key], "<absent>"
            found = first_divergence(left[key], right[key], where)
            if found is not None:
                return found
        return None
    if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        for index in range(max(len(left), len(right))):
            where = f"{path}[{index}]"
            if index >= len(left):
                return where, "<absent>", right[index]
            if index >= len(right):
                return where, left[index], "<absent>"
            found = first_divergence(left[index], right[index], where)
            if found is not None:
                return found
        return None
    if left != right or type(left) is not type(right):
        return path, left, right
    return None


@dataclass
class Divergence:
    """One equivalence-pair violation: the first field that differs."""

    pair: str           # which equivalence pair diverged
    machine: str
    workload: str
    field: str          # dotted path into SimStats.to_dict()
    left: object
    right: object

    def describe(self) -> str:
        return (f"[{self.pair}] {self.machine} on {self.workload}: "
                f"first divergence at {self.field!r}: "
                f"{self.left!r} != {self.right!r}")

    def as_dict(self) -> dict:
        return {
            "pair": self.pair,
            "machine": self.machine,
            "workload": self.workload,
            "field": self.field,
            "left": repr(self.left),
            "right": repr(self.right),
        }


def _compare(pair: str, machine: str, workload: str,
             left: SimStats, right: SimStats) -> Divergence | None:
    found = first_divergence(left.to_dict(), right.to_dict())
    if found is None:
        return None
    field, left_value, right_value = found
    return Divergence(pair, machine, workload, field, left_value, right_value)


# ---------------------------------------------------------------------------
# The pairs
# ---------------------------------------------------------------------------

def diff_engines(
    config: MachineConfig, program: Program, cycle_skip: bool = True
) -> Divergence | None:
    """SoA column engine vs the object reference engine, bit for bit.

    Compares the full serialized :class:`SimStats` — every CPI-stack
    bucket, distribution, histogram, and metric counter — and then every
    interval-timeline row.  The SoA engine's contract is *bit-identical*
    output, so any first divergence is a bug in one engine or the other.
    """
    soa = Machine(config).run(program, cycle_skip=cycle_skip, engine="soa")
    objects = Machine(config).run(
        program, cycle_skip=cycle_skip, engine="objects"
    )
    found = _compare("engine", config.name, program.name, soa, objects)
    if found is not None:
        return found
    if (soa.timeline is None) != (objects.timeline is None):
        return Divergence(
            "engine", config.name, program.name, "timeline",
            soa.timeline, objects.timeline,
        )
    if soa.timeline is not None:
        diverged = first_divergence(
            soa.timeline.to_dict(), objects.timeline.to_dict()
        )
        if diverged is not None:
            field, left_value, right_value = diverged
            return Divergence(
                "engine", config.name, program.name,
                f"timeline.{field}", left_value, right_value,
            )
    return None


def diff_cycle_skip(config: MachineConfig, program: Program) -> Divergence | None:
    """Fast-forwarding must not change a single statistic."""
    skipped = Machine(config).run(program, cycle_skip=True)
    plain = Machine(config).run(program, cycle_skip=False)
    return _compare("cycle-skip", config.name, program.name, skipped, plain)


def diff_timeline_skip(config: MachineConfig, program: Program) -> Divergence | None:
    """Fast-forwarding must not change a single interval-timeline row.

    The closed-form skip replay claims *bit-identical* timelines, not
    just identical aggregates: every sampled row — occupancies, stall
    deltas, bypass-level deltas, conversion counts — must match the
    per-cycle loop's, including rows whose boundary lands inside a
    skipped range.
    """
    skipped = Machine(config).run(program, cycle_skip=True)
    plain = Machine(config).run(program, cycle_skip=False)
    found = first_divergence(
        skipped.timeline.to_dict(), plain.timeline.to_dict()
    )
    if found is None:
        return None
    field, left_value, right_value = found
    return Divergence(
        "timeline-skip", config.name, program.name,
        f"timeline.{field}", left_value, right_value,
    )


def diff_machine_reuse(
    config: MachineConfig, warmup: Program, program: Program
) -> Divergence | None:
    """A machine that already ran ``warmup`` must match a fresh one.

    This is the serial runner's reuse pattern vs the pool worker's
    fresh-machine pattern — the implicit fourth equivalence pair behind
    the "parallel sweeps are identical to serial" claim.
    """
    reused_machine = Machine(config)
    reused_machine.run(warmup)
    reused = reused_machine.run(program)
    fresh = Machine(config).run(program)
    return _compare("machine-reuse", config.name, program.name, reused, fresh)


def diff_run_matrix(
    configs: list[MachineConfig],
    workloads: list[str],
    workdir: Path,
    jobs: int = 2,
) -> list[Divergence]:
    """Serial vs process-pool ``run_matrix`` over the full cross product."""
    from repro.harness.runner import SimulationRunner

    results = {}
    for label, pool_jobs in (("serial", None), ("parallel", jobs)):
        runner = SimulationRunner(
            cache_path=workdir / f"{label}.json",
            bench_path=workdir / f"{label}-bench.json",
        )
        results[label] = runner.run_matrix(
            configs, workloads, jobs=pool_jobs,
            force_pool=pool_jobs is not None,
        )
    divergences = []
    for key in results["serial"]:
        machine, workload = key
        found = _compare(
            "run-matrix", machine, workload,
            results["serial"][key], results["parallel"][key],
        )
        if found is not None:
            divergences.append(found)
    return divergences


def diff_batch(
    configs: list[MachineConfig],
    program: Program,
    cycle_skip=True,
) -> list[Divergence]:
    """Batched lockstep simulation vs each config's solo run, bit for bit.

    Runs all ``configs`` through one
    :func:`~repro.core.engine.run_soa_batch` call and every config
    through its own solo :meth:`Machine.run`, then compares each pair's
    full serialized :class:`SimStats` and every interval-timeline row —
    the batch engine's contract is that sharing fetch/rename/steering
    work across configs changes *nothing*.  ``cycle_skip`` may be a
    per-config sequence (the check alternates it so both loop modes of
    the batch engine face every program).
    """
    from repro.core.engine import run_soa_batch

    if isinstance(cycle_skip, (bool, int)):
        skips = [bool(cycle_skip)] * len(configs)
    else:
        skips = [bool(value) for value in cycle_skip]
    batch_stats = run_soa_batch(
        [Machine(config) for config in configs], program, cycle_skip=skips,
    )
    divergences: list[Divergence] = []
    for config, skip, batched in zip(configs, skips, batch_stats):
        solo = Machine(config).run(program, cycle_skip=skip)
        found = _compare("batch", config.name, program.name, solo, batched)
        if found is None:
            if (solo.timeline is None) != (batched.timeline is None):
                found = Divergence(
                    "batch", config.name, program.name, "timeline",
                    solo.timeline, batched.timeline,
                )
            elif solo.timeline is not None:
                diverged = first_divergence(
                    solo.timeline.to_dict(), batched.timeline.to_dict()
                )
                if diverged is not None:
                    field, left_value, right_value = diverged
                    found = Divergence(
                        "batch", config.name, program.name,
                        f"timeline.{field}", left_value, right_value,
                    )
        if found is not None:
            divergences.append(found)
    return divergences


def diff_gate_adders(seed: int, trials: int = 512) -> list[Divergence]:
    """Every gate-level TC adder netlist vs plain integer addition.

    The sampled complement of the BDD equivalence gate
    (:mod:`repro.circuits.verify`): where the gate proves the netlist's
    *function*, this exercises the evaluator path the proofs don't cover,
    word-parallel (64 random operand triples per packed evaluation).
    Operands are biased toward carry-hostile shapes (all-ones, long
    propagate runs) exactly like the RB property tests.
    """
    from repro.circuits.analysis import ADDER_FAMILIES
    from repro.circuits.verify import evaluate_packed

    rng = random.Random(f"gate-adders:{seed}")
    lanes = 64  # packed test vectors per evaluation
    divergences: list[Divergence] = []
    families = [
        name for name in ADDER_FAMILIES
        if name not in ("rb", "rb_to_tc_converter")  # non-(a, b, cin) interface
    ]
    for width in (8, 64):
        circuits = {name: ADDER_FAMILIES[name](width) for name in families}
        mask = (1 << width) - 1
        for batch in range((trials + lanes - 1) // lanes):
            operands = []
            for _ in range(lanes):
                shape = rng.random()
                if shape < 0.15:
                    a = mask  # all-ones: any carry-in ripples the full width
                elif shape < 0.3:
                    a = mask >> rng.randrange(width)  # long propagate run
                else:
                    a = rng.getrandbits(width)
                operands.append((a, rng.getrandbits(width), rng.getrandbits(1)))
            packed = {f"a[{i}]": 0 for i in range(width)}
            packed.update({f"b[{i}]": 0 for i in range(width)})
            packed["cin"] = 0
            for lane, (a, b, cin) in enumerate(operands):
                for i in range(width):
                    packed[f"a[{i}]"] |= ((a >> i) & 1) << lane
                    packed[f"b[{i}]"] |= ((b >> i) & 1) << lane
                packed["cin"] |= cin << lane
            lane_mask = (1 << lanes) - 1
            for name, circuit in circuits.items():
                outputs = evaluate_packed(circuit, packed, lane_mask)
                for lane, (a, b, cin) in enumerate(operands):
                    total = a + b + cin
                    got = sum(
                        ((outputs[f"sum[{i}]"] >> lane) & 1) << i
                        for i in range(width)
                    ) | ((outputs["cout"] >> lane) & 1) << width
                    if got != total:
                        divergences.append(Divergence(
                            pair="gate-adders",
                            machine=f"{name} width={width}",
                            workload=(
                                f"seed={seed} batch={batch} lane={lane} "
                                f"a={a:#x} b={b:#x} cin={cin}"
                            ),
                            field="sum|cout<<width",
                            left=got,
                            right=total,
                        ))
    return divergences


def diff_rb_adder(seed: int, trials: int = 2000) -> list[Divergence]:
    """Bitwise word-parallel RB addition vs the per-digit reference.

    Operands are random *redundant* encodings (independent plus/minus
    digit patterns, all widths the machines use), not just canonical
    TC re-encodings — most values have many encodings and the adder must
    agree on all of them.
    """
    rng = random.Random(f"rb-adder:{seed}")
    divergences: list[Divergence] = []
    for trial in range(trials):
        width = rng.choice((4, 8, 16, 32, 64))
        plus = rng.getrandbits(width)
        minus = rng.getrandbits(width) & ~plus
        x = RBNumber(width, plus, minus)
        plus = rng.getrandbits(width)
        minus = rng.getrandbits(width) & ~plus
        y = RBNumber(width, plus, minus)
        for op, bitwise, reference in (
            ("add", rb_add, rb_add_reference),
            ("sub", rb_sub, rb_sub_reference),
        ):
            fast = bitwise(x, y)
            slow = reference(x, y)
            left = (fast.value.plus, fast.value.minus, fast.overflow)
            right = (slow.value.plus, slow.value.minus, slow.overflow)
            if left != right:
                divergences.append(Divergence(
                    pair="rb-adder",
                    machine=f"{op} width={width}",
                    workload=f"seed={seed} trial={trial} x={x!r} y={y!r}",
                    field="(plus, minus, overflow)",
                    left=left,
                    right=right,
                ))
    return divergences
