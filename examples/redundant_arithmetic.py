#!/usr/bin/env python3
"""Tour of the redundant binary number system (paper Section 3).

Shows the signed-digit representation, carry-free addition with bogus
overflow correction, forwarding of intermediate results in redundant
form, the cost of the RB -> TC conversion at the gate level, and the
sum-addressed-memory decode that lets loads skip that conversion.

Usage:  python examples/redundant_arithmetic.py
"""

from repro.circuits import build_cla_adder, build_rb_adder, build_rb_to_tc_converter
from repro.circuits.sam import sam_match
from repro.rb import (
    RBALU,
    RBNumber,
    from_twos_complement,
    rb_add,
    to_twos_complement,
)


def representation_demo() -> None:
    print("== signed-digit representation (paper §3.1) ==")
    three_a = RBNumber.from_msd_digits([0, 1, 0, -1])
    three_b = RBNumber.from_msd_digits([0, 0, 1, 1])
    print(f"  {three_a}  and  {three_b}  both encode 3 "
          f"({three_a.value()} == {three_b.value()})")
    encoded = from_twos_complement(-5, 8)
    print(f"  -5 hardwired into RB: {encoded} (plus={encoded.plus:#04x}, "
          f"minus={encoded.minus:#04x})")
    print(f"  back via the carry-propagating subtraction: "
          f"{to_twos_complement(encoded)}\n")


def chained_add_demo() -> None:
    print("== carry-free addition chains (paper §3.3, §3.5) ==")
    alu = RBALU(width=8)
    value = alu.encode(1)
    print("  repeatedly incrementing 1 (watch non-zero digits spread left):")
    for step in range(5):
        value = alu.add(value, alu.encode(1)).value
        print(f"    after +1 x{step + 1}: {value}")
    # Drive a chain into two's-complement overflow.
    total = alu.encode(100)
    result = alu.add(total, alu.encode(100))
    print(f"  100 + 100 in 8 digits wraps to {result.value.value()} "
          f"(overflow={result.overflow})\n")


def forwarding_demo() -> None:
    print("== forwarding intermediate results in redundant form (§4.1) ==")
    alu = RBALU(width=16)
    # a dependent chain: each result feeds the next without conversion
    chain = [alu.encode(7)]
    for addend in (12, -5, 113, -40):
        chain.append(alu.add(chain[-1], alu.encode(addend)).value)
    values = [to_twos_complement(v) for v in chain]
    print(f"  chain values (converted only for display): {values}")
    dense = chain[-1]
    print(f"  final value kept redundant: {dense} "
          f"({dense.nonzero_digit_count()} non-zero digits)\n")


def delay_demo() -> None:
    print("== why this wins: gate-level critical paths (§3.4) ==")
    for width in (16, 32, 64):
        rb = build_rb_adder(width).delay()
        cla = build_cla_adder(width).delay()
        conv = build_rb_to_tc_converter(width).delay()
        print(f"  {width:2d} digits: RB adder {rb:5.1f}  CLA {cla:5.1f}  "
              f"RB->TC converter {conv:5.1f}  (CLA/RB = {cla / rb:.2f}x)")
    print()


def sam_demo() -> None:
    print("== sum-addressed memory: indexing a cache without an add (§3.6) ==")
    base, displacement, width = 0b101100, 0b000111, 6
    target = (base + displacement) % (1 << width)
    matches = [k for k in range(1 << width) if sam_match(base, displacement, k, width)]
    print(f"  base={base:#08b} disp={displacement:#08b}: SAM asserts word line(s) "
          f"{matches} (true sum index: {target})")
    rb = from_twos_complement(45, width + 1)
    print(f"  a redundant address {rb} indexes via its components "
          f"X+={rb.plus} X-={rb.minus}: "
          f"{sam_match(rb.plus, (-rb.minus) % (1 << width), 45 % (1 << width), width)}")


def main() -> None:
    representation_demo()
    chained_add_demo()
    forwarding_demo()
    delay_demo()
    sam_demo()


if __name__ == "__main__":
    main()
