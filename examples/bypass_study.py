#!/usr/bin/env python3
"""Limited bypass networks and scheduling around holes (paper §4.2-4.3).

Builds synthetic workloads with controlled dependence structure and shows
how deleting bypass levels creates holes in data availability, what the
Fig. 8 shift-register patterns look like, and how much IPC each deleted
level costs on latency- vs bandwidth-bound code.

Usage:  python examples/bypass_study.py
"""

from repro.backend.bypass import BypassModel, BypassStyle
from repro.backend.formats import DataFormat
from repro.backend.latency import AdderStyle
from repro.core import ideal, ideal_limited, simulate
from repro.core.presets import FIG14_VARIANTS
from repro.isa.opcodes import LatencyClass
from repro.utils.tables import format_table
from repro.workloads import dependent_chain_program, independent_chains_program


def shift_register_demo() -> None:
    print("== availability patterns as Fig. 8 shift registers ==")
    print("  (bit i = a dependent may be selected i+1 cycles after the producer)")
    full = BypassModel(AdderStyle.IDEAL)
    rows = [
        ("full network", full.templates(LatencyClass.INT_ARITH, False)),
    ]
    for removed in FIG14_VARIANTS:
        label = "No-" + ",".join(str(x) for x in sorted(removed))
        model = BypassModel(AdderStyle.IDEAL, BypassStyle.LIMITED, removed)
        rows.append((label, model.templates(LatencyClass.INT_ARITH, False)))
    for label, templates in rows:
        bits = templates[DataFormat.TC].shift_register_bits(6)
        print(f"  {label:12s} {''.join(str(b) for b in bits)}")
    rb_limited = BypassModel(AdderStyle.RB, BypassStyle.RB_LIMITED)
    templates = rb_limited.templates(LatencyClass.INT_ARITH, True)
    rb_bits = templates[DataFormat.RB].shift_register_bits(6)
    print(f"  {'RB-limited':12s} {''.join(str(b) for b in rb_bits)}   "
          "(<- the paper's 2-cycle hole for RB consumers)\n")


def ipc_study() -> None:
    print("== IPC cost of deleting bypass levels (8-wide Ideal machine) ==")
    serial = dependent_chain_program(iterations=1500, chain_length=4)
    parallel = independent_chains_program(iterations=1500, chains=6)
    configs = [("full", ideal(8))]
    configs += [
        ("No-" + ",".join(str(x) for x in sorted(removed)), ideal_limited(8, removed))
        for removed in FIG14_VARIANTS
    ]
    rows = []
    for label, config in configs:
        ipc_serial = simulate(config, serial).ipc
        ipc_parallel = simulate(config, parallel).ipc
        rows.append([label, ipc_serial, ipc_parallel])
    print(format_table(
        ["bypass network", "serial chain IPC", "parallel chains IPC"], rows
    ))
    print("\n  deleting level 1 stretches every dependence edge -> the serial")
    print("  chain pays in full, while the parallel version hides it with ILP,")
    print("  mirroring the paper's Fig. 14 discussion.")


def main() -> None:
    shift_register_demo()
    ipc_study()


if __name__ == "__main__":
    main()
