#!/usr/bin/env python3
"""Run one of the paper's workloads across all machine models (Figs. 9-12).

Picks a benchmark kernel from the suite (default: gap, whose bignum carry
chains are the redundant binary adder's best case among the kernels) and
reports IPC, misprediction rate, cache behaviour, and the Fig. 13 bypass
case distribution for each of the paper's machines at both widths.

Usage:  python examples/machine_comparison.py [workload]
"""

import sys

from repro.core import all_paper_machines, simulate
from repro.core.statistics import BypassCase
from repro.utils.tables import format_table
from repro.workloads import build, get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gap"
    workload = get_workload(name)
    program = build(name)
    print(f"workload: {workload.name} ({workload.suite}) — {workload.description}")
    print(f"{len(program)} static instructions\n")

    for width in (4, 8):
        rows = []
        for config in all_paper_machines(width):
            stats = simulate(config, program)
            rows.append([
                config.name,
                stats.ipc,
                f"{stats.misprediction_rate:.2%}",
                f"{stats.dcache_hit_rate:.2%}",
                f"{stats.bypass_cases.fraction(BypassCase.RB_TO_TC):.2%}",
            ])
        print(format_table(
            ["machine", "IPC", "mispredict", "D$ hit", "RB->TC bypasses"],
            rows,
            title=f"{width}-wide machines",
        ))
        print()


if __name__ == "__main__":
    main()
