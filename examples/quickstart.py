#!/usr/bin/env python3
"""Quickstart: assemble a kernel and compare the paper's four machines.

Runs a small dependent-add loop (the case redundant binary adders were
built for) on the Baseline, RB-limited, RB-full, and Ideal 8-wide
machines, then shows where the speedup comes from with the statistics the
simulator collects.

Usage:  python examples/quickstart.py
"""

from repro.core import baseline, ideal, rb_full, rb_limited, simulate
from repro.isa import assemble

SOURCE = """
    .data
table:    .quad 3, 1, 4, 1, 5, 9, 2, 6
checksum: .quad 0
    .text
main:
    lda   r1, table
    lda   r2, 0(zero)        ; accumulator
    lda   r3, 1500(zero)     ; iterations
loop:
    and   r3, #7, r4         ; pick a table slot
    s8add r4, r1, r5
    ldq   r6, 0(r5)
    add   r2, r6, r2         ; serial dependent adds:
    add   r2, #1, r2         ;   the RB adder's best case
    add   r2, #1, r2
    sub   r3, #1, r3
    bgt   r3, loop
    stq   r2, checksum
    halt
"""


def main() -> None:
    program = assemble(SOURCE, "quickstart")
    print(f"assembled {len(program)} instructions\n")

    results = []
    for config in (baseline(8), rb_limited(8), rb_full(8), ideal(8)):
        stats = simulate(config, program)
        results.append((config.name, stats))
        print(stats.summary())
        print()

    base_ipc = results[0][1].ipc
    print("speedup over the Baseline (2-cycle pipelined adders):")
    for name, stats in results:
        print(f"  {name:16s} {stats.ipc / base_ipc:.3f}x")


if __name__ == "__main__":
    main()
