#!/usr/bin/env python3
"""Instruction steering and limited bypass (the paper's §4.2 closing note).

The paper observes that further bypass restrictions "may be made with
little loss in IPC with the help of instruction steering" and leaves it
as future work.  This example implements that study: the paper's
round-robin steering vs steering every instruction to its most recent
producer's scheduler, on the 8-wide machines where forwarding locality
also dodges the 1-cycle cluster hop.

Usage:  python examples/steering_study.py [workload ...]
"""

import sys
from dataclasses import replace

from repro.core import ideal_limited, rb_limited, simulate
from repro.utils.tables import format_table
from repro.workloads import build


def study(workloads: list[str]) -> None:
    machines = {
        "RB-limited (BYP-2 removed)": rb_limited(8),
        "Ideal No-2,3 (2-cycle hole)": ideal_limited(8, {2, 3}),
    }
    for label, config in machines.items():
        dependence = replace(
            config, name=f"{config.name}+dep", steering_policy="dependence"
        )
        rows = []
        for name in workloads:
            program = build(name)
            round_robin = simulate(config, program)
            steered = simulate(dependence, program)
            rows.append([
                name,
                round_robin.ipc,
                steered.ipc,
                f"{steered.ipc / round_robin.ipc - 1:+.1%}",
                f"{round_robin.cross_cluster_fraction():.0%} -> "
                f"{steered.cross_cluster_fraction():.0%}",
            ])
        print(format_table(
            ["workload", "round-robin IPC", "dependence IPC", "delta",
             "cross-cluster fwd"],
            rows, title=label,
        ))
        print()


def main() -> None:
    workloads = sys.argv[1:] or ["gap", "li", "mcf", "compress", "go"]
    study(workloads)
    print("Dependent chains steered onto one scheduler forward through the")
    print("cheap first-level bypass and stay inside their cluster — the")
    print("mechanism the paper predicted would offset restricted networks.")


if __name__ == "__main__":
    main()
