"""Ablation: RB -> TC format-converter depth.

The paper fixes the converter at 2 cycles (a CLA-class subtraction spread
over two stages).  This ablation sweeps the converter depth on the 8-wide
RB-full machine: at 0 cycles the RB machine degenerates into the Ideal
machine; each added cycle widens the gap, quantifying how much of the RB
design's cost is the conversion itself.
"""

from dataclasses import replace

from repro.core.presets import ideal, rb_full
from repro.utils.stats import mean
from repro.utils.tables import format_table

WORKLOADS = ["gap", "li", "twolf", "go", "crafty"]
DEPTHS = (0, 1, 2, 3, 4)


def test_ablation_conversion_latency(benchmark, runner, save_text):
    def sweep():
        means = {}
        for depth in DEPTHS:
            config = replace(
                rb_full(8), name=f"RB-full-conv{depth}-8w", conversion_cycles=depth
            )
            means[depth] = mean(
                runner.run(config, workload).ipc for workload in WORKLOADS
            )
        means["ideal"] = mean(
            runner.run(ideal(8), workload).ipc for workload in WORKLOADS
        )
        return means

    means = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[f"conv={d}", means[d]] for d in DEPTHS] + [["Ideal", means["ideal"]]]
    save_text(
        "ablation_conversion",
        format_table(["machine", "mean IPC"], rows,
                     title="Ablation: RB->TC converter depth, 8-wide RB-full"),
    )

    # IPC is monotonically non-increasing in converter depth
    for shallower, deeper in zip(DEPTHS, DEPTHS[1:]):
        assert means[deeper] <= means[shallower] * 1.001
    # a free converter makes the RB machine the Ideal machine
    assert means[0] >= means["ideal"] * 0.995
    # the paper's 2-cycle point costs a real but small fraction
    assert means[2] > means["ideal"] * 0.90
