"""Figure 9: IPC of the four 8-wide machines on the SPECint2000-like suite.

Paper claims checked: RB-full ~7% above Baseline and within ~1.1% of
Ideal; RB-limited within ~2% of RB-full.  Our kernels are arithmetic-
heavier than SPEC (see EXPERIMENTS.md), so the tolerances are directional:
ordering must hold and magnitudes must be in the paper's ballpark.
"""

from repro.harness.experiments import fig_ipc
from repro.utils.stats import mean


def test_fig09_ipc_8wide_spec2000(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: fig_ipc(8, "spec2000", runner), rounds=1, iterations=1
    )
    save_result(result)
    means = result.series["means"]
    base = means["Baseline-8w"]
    limited = means["RB-limited-8w"]
    full = means["RB-full-8w"]
    ideal = means["Ideal-8w"]

    # machine ordering on suite means
    assert base < full <= ideal * 1.001
    assert limited <= full * 1.001
    # RB buys a real speedup over pipelined TC adders (paper: ~7%)
    assert full / base > 1.02
    # and tracks Ideal much more closely than the Baseline does
    assert (ideal - full) < (ideal - base) * 0.6
    # RB-limited within a few percent of RB-full (paper: ~2%)
    assert limited / full > 0.94

    # per-benchmark: Ideal never loses to Baseline
    ipcs = result.series["ipc"]
    for b, i in zip(ipcs["Baseline-8w"], ipcs["Ideal-8w"]):
        assert i >= b * 0.999
