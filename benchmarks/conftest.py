"""Shared helpers for the figure/table benchmarks.

Every benchmark regenerates one paper artifact through the shared
simulation runner (disk-cached, so the first full run does the sweep and
reruns are cheap), prints it, saves it under ``benchmarks/output/``, and
asserts the paper's *shape* claims about it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness.runner import default_runner

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def runner():
    shared = default_runner()
    yield shared
    # persistence is batched (run() only marks the cache dirty); make sure
    # a benchmark session that used bare run() still lands on disk once.
    shared.flush()


@pytest.fixture(scope="session")
def save_result():
    """Print an ExperimentResult and persist it to benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _save(result):
        text = result.text()
        print("\n" + text)
        (OUTPUT_DIR / f"{result.experiment}.txt").write_text(text + "\n")
        return result

    return _save


@pytest.fixture(scope="session")
def save_text():
    """Print and persist a plain-text artifact (ablation tables)."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        print("\n" + text)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _save
