"""Table 1: dynamic instruction mix by format class."""

from repro.harness.experiments import table1_mix


def test_table1_instruction_mix(benchmark, save_result):
    result = benchmark.pedantic(table1_mix, rounds=1, iterations=1)
    save_result(result)
    ours = result.series["ours"]

    # Shape claims from the paper's Table 1 discussion:
    # every class is populated by the suite,
    assert all(fraction > 0 for fraction in ours.values())
    # a substantial share of the stream produces redundant binary results
    rb_output = (ours["ARITH_RB_RB"] + ours["CMOV_SIGN_RB_RB"]
                 + ours["CMOV_ZERO_RB_RB"])
    assert rb_output > 0.15
    # memory and branches are major classes; cmovs are rare
    assert ours["MEMORY_RB_TC"] > 0.10
    assert ours["BRANCH_RB"] > 0.08
    assert ours["CMOV_SIGN_RB_RB"] + ours["CMOV_ZERO_RB_RB"] < 0.08
    # TC-only operations are a significant minority (paper: ~25%)
    assert 0.05 < ours["OTHER_TC_TC"] < 0.45
