"""Figure 11: IPC of the four 4-wide machines on the SPECint2000-like suite.

Paper: at 4-wide, execution bandwidth bottlenecks the exposed ILP, so
fast adders matter *less* than at 8-wide (RB-full +5% over Baseline vs
+7% at 8-wide) — the width trend is the claim checked here.
"""

from repro.harness.experiments import fig_ipc


def test_fig11_ipc_4wide_spec2000(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: fig_ipc(4, "spec2000", runner), rounds=1, iterations=1
    )
    save_result(result)
    means = result.series["means"]
    base = means["Baseline-4w"]
    full = means["RB-full-4w"]
    ideal = means["Ideal-4w"]

    assert base < full <= ideal * 1.001
    assert full / base > 1.01
    assert means["RB-limited-4w"] <= full * 1.001

    # width trend: the Ideal-over-Baseline advantage at 8-wide exceeds
    # (or at least matches) the 4-wide advantage
    eight = fig_ipc(8, "spec2000", runner).series["means"]
    advantage_8w = eight["Ideal-8w"] / eight["Baseline-8w"]
    advantage_4w = ideal / base
    assert advantage_8w >= advantage_4w * 0.98
