"""§3.4: adder critical-path delays (RB vs CLA vs carry-select vs ripple)."""

from repro.harness.experiments import sec34_adder_delays


def test_sec34_adder_delays(benchmark, save_result):
    result = benchmark.pedantic(sec34_adder_delays, rounds=1, iterations=1)
    save_result(result)
    delays = result.series["delays"]
    ratios = result.series["ratios_vs_rb"]

    # RB delay is independent of operand width (the paper's central point)
    assert len(set(delays["rb"].values())) == 1
    # CLA grows logarithmically: equal increments per width doubling
    cla = delays["cla"]
    increments = [cla[16] - cla[8], cla[32] - cla[16], cla[64] - cla[32]]
    assert len(set(increments)) == 1
    # ripple grows linearly
    assert delays["ripple"][64] / delays["ripple"][32] > 1.9
    # paper: RB ~3x a 64-bit CLA (SPICE); gate-normalized model: >= 2x
    assert ratios["cla"] >= 2.0
    # paper: converter ~2.7x the RB adder, i.e. about a CLA
    assert abs(ratios["rb_to_tc_converter"] - ratios["cla"]) < 0.5
    # family ordering at 64 bits
    assert ratios["ripple"] > ratios["carry_select"] > ratios["cla"] > 1.0
