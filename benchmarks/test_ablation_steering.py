"""Ablation: round-robin vs dependence-aware steering (§4.2 future work).

The paper suggests instruction steering could make restricted bypass
networks cheap.  This ablation compares the paper's round-robin policy
against steering each instruction to its most recent producer's scheduler
on the 8-wide machines, where forwarding locality also avoids the 1-cycle
cluster hop.
"""

from dataclasses import replace

from repro.core.presets import ideal_limited, rb_limited
from repro.utils.stats import mean
from repro.utils.tables import format_table

WORKLOADS = ["gap", "li", "mcf", "perlbmk", "vortex", "crafty"]


def _with_dependence(config):
    return replace(config, name=f"{config.name}+dep", steering_policy="dependence")


def test_ablation_steering(benchmark, runner, save_text):
    def sweep():
        rows = []
        for base_config in (rb_limited(8), ideal_limited(8, {2, 3})):
            dep_config = _with_dependence(base_config)
            for workload in WORKLOADS:
                rr = runner.run(base_config, workload)
                dep = runner.run(dep_config, workload)
                rows.append([
                    base_config.name, workload,
                    rr.ipc, dep.ipc,
                    rr.cross_cluster_fraction(), dep.cross_cluster_fraction(),
                ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["machine", "workload", "RR IPC", "DEP IPC", "RR x-cluster", "DEP x-cluster"],
        rows, title="Ablation: steering policy on limited-bypass 8-wide machines",
    )
    save_text("ablation_steering", table)

    # dependence steering localizes forwarding dramatically...
    rr_cross = mean(row[4] for row in rows)
    dep_cross = mean(row[5] for row in rows)
    assert dep_cross < rr_cross * 0.5
    # ...without losing IPC on average (and usually gaining)
    rr_ipc = mean(row[2] for row in rows)
    dep_ipc = mean(row[3] for row in rows)
    assert dep_ipc > rr_ipc * 0.97
