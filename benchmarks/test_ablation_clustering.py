"""Ablation: inter-cluster forwarding delay at 8-wide.

The paper's 8-wide machines pay 1 cycle to forward between their two
clusters, which is why the 8-wide No-1,2 machine loses to the 4-wide one
in Fig. 14.  This ablation sweeps the cluster hop (0 = a flat 8-wide
machine) to isolate that cost.
"""

from dataclasses import replace

from repro.core.presets import ideal
from repro.utils.stats import mean
from repro.utils.tables import format_table

WORKLOADS = ["gap", "li", "mcf", "perlbmk", "go"]
DELAYS = (0, 1, 2, 3)


def test_ablation_clustering(benchmark, runner, save_text):
    def sweep():
        means = {}
        for delay in DELAYS:
            config = replace(
                ideal(8), name=f"Ideal-cluster{delay}-8w", cluster_delay=delay
            )
            means[delay] = mean(
                runner.run(config, workload).ipc for workload in WORKLOADS
            )
        return means

    means = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_text(
        "ablation_clustering",
        format_table(["cluster delay", "mean IPC"],
                     [[d, means[d]] for d in DELAYS],
                     title="Ablation: inter-cluster delay, 8-wide Ideal"),
    )

    # IPC degrades monotonically with the cluster hop
    for faster, slower in zip(DELAYS, DELAYS[1:]):
        assert means[slower] <= means[faster] * 1.001
    # and the paper's 1-cycle hop costs a measurable amount
    assert means[1] < means[0]
