"""Simulator performance: cycles and instructions simulated per second.

Not a paper artifact — this is the benchmark that actually measures code
speed (the figure benchmarks are one-shot regenerations).  It guards
against performance regressions in both cycle engines: the
structure-of-arrays fast path (``engine="soa"``) and the DynInstr object
reference (``engine="objects"``).
"""

import pytest

from repro.core import ideal
from repro.core.machine import Machine
from repro.workloads.suite import build

# Per-engine throughput floors (simulated instructions per wall second on
# the CI container), each with ~25% headroom for host jitter:
#
# * ``objects``: the inlined-wakeup + cycle-skipping object loop sustains
#   ~17k; the unoptimized seed managed ~12.8k.
# * ``soa``: the flat-column engine sustains ~67-70k (a 4x engine
#   speedup; BENCH_history.jsonl has the lineage).  Floor at 50k.
#   Ratchet policy: once the measured number holds comfortably above
#   100k for a few consecutive PRs, raise the floor to 100_000 —
#   never lower a floor to merge a PR.
FLOORS = {"soa": 50_000, "objects": 13_000}


@pytest.mark.parametrize("engine", sorted(FLOORS))
def test_simulator_throughput(benchmark, engine):
    program = build("ijpeg")
    machine = Machine(ideal(8))

    stats = benchmark.pedantic(
        lambda: machine.run(program, engine=engine), rounds=3, iterations=1
    )
    assert stats.instructions > 15_000

    # Gate on the best round, not the mean: the floor guards against code
    # regressions, and the best-of is the measurement least polluted by
    # host noise (same policy as perfbench's best-of-repeats).
    best_seconds = benchmark.stats.stats.min
    assert stats.instructions / best_seconds > FLOORS[engine]
