"""Simulator performance: cycles and instructions simulated per second.

Not a paper artifact — this is the benchmark that actually measures code
speed (the figure benchmarks are one-shot regenerations).  It guards
against performance regressions in the scheduler inner loop.
"""

from repro.core import ideal
from repro.core.machine import Machine
from repro.workloads.suite import build


def test_simulator_throughput(benchmark):
    program = build("ijpeg")
    machine = Machine(ideal(8))

    stats = benchmark.pedantic(
        lambda: machine.run(program), rounds=3, iterations=1
    )
    assert stats.instructions > 15_000

    # The optimized loop (inlined wakeup checks, cycle skipping, cached
    # decode) sustains ~17k simulated instructions per wall second on the
    # CI container; the unoptimized seed managed ~12.8k.  Floor set with
    # ~25% headroom for host jitter.
    mean_seconds = benchmark.stats.stats.mean
    assert stats.instructions / mean_seconds > 13_000
