"""CPI stacks and critical-path acceptance on the Fig. 12 machine set.

Two claims made measurable by ``repro.obs.explain``:

* the per-cycle stall attribution is *exact* — for every (machine,
  workload) pair in the 4-wide spec95 sweep the stack components sum to
  the cycle count (validated inside ``cpi_stack_experiment``), and only
  the reduced-bypass machine pays a ``bypass-hole`` component;
* the Fig. 13 shape — over the last-arriving (critical) operand edges,
  RB->TC conversions are a strictly smaller share than load producers on
  the suite mean, which is what licenses serving conversions without a
  dedicated bypass level (§4.2).
"""

from repro.core.machine import Machine
from repro.core.presets import rb_full
from repro.harness.experiments import cpi_stack_experiment
from repro.obs.critpath import CritPathReport
from repro.obs.events import EventBus
from repro.obs.explain import StallCause
from repro.obs.sinks import CollectorSink
from repro.workloads.suite import build, spec95_names


def test_cpi_stacks_4wide_spec95(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: cpi_stack_experiment(runner), rounds=1, iterations=1
    )
    save_result(result)
    series = result.series

    for machine, stack in series.items():
        components = sum(
            stack[cause.value] for cause in StallCause
        )
        # instruction-weighted components reassemble the suite-mean CPI
        assert abs(components - stack["total_cpi"]) < 1e-9, machine
        assert stack["retiring"] > 0, machine

    # only the machine with a deleted bypass level pays for holes
    assert series["RB-limited-4w"]["bypass-hole"] > 0
    assert series["RB-full-4w"]["bypass-hole"] == 0
    assert series["Baseline-4w"]["bypass-hole"] == 0
    assert series["Ideal-4w"]["bypass-hole"] == 0

    # Ideal computes TC directly: no conversion latency anywhere
    assert series["Ideal-4w"]["conversion-latency"] == 0
    for machine in ("RB-full-4w", "RB-limited-4w"):
        assert series[machine]["conversion-latency"] > 0, machine

    # the stack ordering matches the IPC ordering: Ideal spends the
    # least non-retiring CPI of the four machines
    def stalled(machine):
        return series[machine]["total_cpi"] - series[machine]["retiring"]

    assert stalled("Ideal-4w") <= stalled("RB-full-4w")
    assert stalled("RB-full-4w") <= stalled("Baseline-4w")


def test_critical_path_fig13_shape(benchmark, save_text):
    """Suite-mean criticality of RB->TC conversions vs loads (rb-full, 4w)."""

    def sweep():
        reports = {}
        for name in spec95_names():
            sink = CollectorSink()
            Machine(rb_full(4)).run(build(name), bus=EventBus([sink]))
            reports[name] = CritPathReport.from_events(sink.events)
        return reports

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["critical last-arriving operands, RB-full-4w (fractions)"]
    lines.append(f"{'kernel':>10}  {'conv':>6}  {'load':>6}  {'zero-slack':>10}")
    conv_sum = load_sum = 0.0
    for name, report in reports.items():
        assert report.bound > 0, name
        assert sum(report.by_service.values()) == report.bound, name
        conv_sum += report.conversion_fraction()
        load_sum += report.load_fraction()
        lines.append(
            f"{name:>10}  {report.conversion_fraction():6.1%}  "
            f"{report.load_fraction():6.1%}  {report.zero_slack_fraction():10.1%}"
        )
    n = len(reports)
    lines.append(f"{'mean':>10}  {conv_sum / n:6.1%}  {load_sum / n:6.1%}")
    save_text("critpath_fig13_shape", "\n".join(lines))

    # Fig. 13: conversions are a small slice of critical operands, loads
    # a large one — strictly ordered on the suite mean
    assert conv_sum / n < load_sum / n
