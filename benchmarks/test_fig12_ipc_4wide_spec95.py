"""Figure 12: IPC of the four 4-wide machines on the SPECint95-like suite.

Paper: RB-full +6% over Baseline, within 1.3% of Ideal; RB-limited within
~2.3% of RB-full.
"""

from repro.harness.experiments import fig_ipc


def test_fig12_ipc_4wide_spec95(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: fig_ipc(4, "spec95", runner), rounds=1, iterations=1
    )
    save_result(result)
    means = result.series["means"]
    base = means["Baseline-4w"]
    limited = means["RB-limited-4w"]
    full = means["RB-full-4w"]
    ideal = means["Ideal-4w"]

    assert base < full <= ideal * 1.001
    assert full / base > 1.01
    assert full / ideal > 0.94
    assert limited / full > 0.94
