"""Ablation: register-file organization costs (§4.1).

Not a timing sweep — the static storage/complexity tradeoff between the
TC-only and TC+RB register-file organizations, paired with the measured
IPC of the two machines built on them (RB-limited uses TC-only files with
the pruned network; RB-full uses both files).
"""

from repro.backend.regfile import compare_organizations
from repro.core.presets import rb_full, rb_limited
from repro.utils.stats import mean
from repro.utils.tables import format_table
from repro.workloads.suite import all_workloads


def test_ablation_regfile_cost(benchmark, runner, save_text):
    def sweep():
        costs = compare_organizations(entries=128, data_bits=64)
        workloads = [w.name for w in all_workloads("spec2000")]
        ipc = {
            "tc-only": mean(runner.run(rb_limited(8), w).ipc for w in workloads),
            "tc+rb": mean(runner.run(rb_full(8), w).ipc for w in workloads),
        }
        return costs, ipc

    costs, ipc = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, cost in costs.items():
        rows.append([
            name,
            cost.storage_bits,
            cost.bypass_levels_rb_alu,
            cost.mux_fan_in(functional_units=8),
            ipc[name],
        ])
    save_text(
        "ablation_regfile",
        format_table(
            ["organization", "storage bits", "RB-ALU bypass levels",
             "mux fan-in (8 FU)", "mean IPC (8w, spec2000)"],
            rows, title="Ablation: register-file organization (§4.1)",
        ),
    )

    # the storage-for-wires trade: 3x the state buys fewer bypass paths
    # and a narrower operand mux, and (with this workload mix) more IPC
    assert costs["tc+rb"].storage_bits == 3 * costs["tc-only"].storage_bits
    assert costs["tc+rb"].mux_fan_in(8) < costs["tc-only"].mux_fan_in(8)
    assert ipc["tc+rb"] >= ipc["tc-only"] * 0.999
