"""The abstract's headline numbers, measured vs paper.

Paper: 8-wide Ideal is ~8% (int2000) / ~11% (int95) over Baseline;
RB-full comes within ~1% of Ideal; one level of bypass can be removed at
a 1-3% IPC cost.  Checked as directional bands (see EXPERIMENTS.md for
the workload-mix caveat).
"""

from repro.harness.experiments import headline_ratios


def test_headline_ratios(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: headline_ratios(runner), rounds=1, iterations=1
    )
    save_result(result)
    series = result.series

    for key, measured in series.items():
        # the 1-cycle adder is worth a real, single-digit-to-low-teens
        # percentage on suite means
        assert 1.02 < measured["ideal_over_base"] < 1.30, key
        # RB-full recovers most of that gap
        assert measured["rbfull_vs_ideal"] > 0.93, key
        assert measured["rbfull_over_base"] > 1.0, key
        # the limited network costs only a few percent
        assert measured["rblim_vs_rbfull"] > 0.94, key

    # width trend within each suite: 8-wide benefits at least as much
    for suite in ("spec2000", "spec95"):
        assert (series[f"8w/{suite}"]["ideal_over_base"]
                >= series[f"4w/{suite}"]["ideal_over_base"] * 0.98)
