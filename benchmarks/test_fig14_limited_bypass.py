"""Figure 14: harmonic-mean IPC of the Ideal machine with limited bypass.

Paper claims checked:

* configurations that keep the first bypass level (No-2, No-3, No-2,3)
  stay close to the full network;
* removing the first level (No-1, No-1,2) costs far more;
* the 4-wide No-1,2 machine outperforms the 8-wide No-1,2 machine
  (clustering makes the 8-wide one worse despite its bandwidth).
"""

from repro.harness.experiments import fig14_limited_bypass


def test_fig14_limited_bypass(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: fig14_limited_bypass(runner), rounds=1, iterations=1
    )
    save_result(result)
    series = result.series

    for width in (4, 8):
        full = series["full"][width]
        no1 = series["No-1"][width]
        no2 = series["No-2"][width]
        no3 = series["No-3"][width]
        no12 = series["No-1,2"][width]
        no23 = series["No-2,3"][width]

        # keeping level 1 keeps IPC within a few percent of full bypass
        assert no2 / full > 0.95
        assert no3 / full > 0.95
        assert no23 / full > 0.93
        # removing level 1 hurts much more
        assert no1 / full < 0.92
        assert no12 / full < no1 / full
        # higher levels are used less than lower levels (ordering)
        assert no3 >= no2 >= no23 > no1 > no12

    # the paper's crossover: 4-wide No-1,2 beats the clustered 8-wide No-1,2
    assert series["No-1,2"][4] > series["No-1,2"][8]
