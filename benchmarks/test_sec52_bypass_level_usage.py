"""§5.2: where instructions get their operands on the Ideal machine.

Paper: 21-38% of instructions receive no source off the bypass network,
51-70% take a source from the first-level bypass, 5-14% from another
bypass path.  Checked as ranges with slack for the kernel-vs-SPEC
workload difference.
"""

from repro.harness.experiments import sec52_bypass_levels


def test_sec52_bypass_level_usage(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: sec52_bypass_levels(runner), rounds=1, iterations=1
    )
    save_result(result)

    for width in ("4w", "8w"):
        ranges = result.series[width]
        none_lo, none_hi = ranges["NONE"]
        first_lo, first_hi = ranges["FIRST_LEVEL"]
        other_lo, other_hi = ranges["OTHER_LEVEL"]

        # first-level bypass dominates every benchmark (paper: 51-70%)
        assert first_lo > 0.30
        assert first_hi <= 0.95
        # a meaningful minority never uses the network (paper: 21-38%)
        assert none_lo > 0.02
        assert none_hi < 0.60
        # the other levels are a small but non-zero share (paper: 5-14%)
        assert other_hi < 0.35
        # and the first level always beats the other levels
        assert first_lo > other_hi
