"""Table 3: the latency model must be exactly the paper's table."""

from repro.harness.experiments import table3_latencies


def test_table3_latencies(benchmark, save_result):
    result = benchmark.pedantic(table3_latencies, rounds=1, iterations=1)
    save_result(result)
    series = result.series

    paper = {
        "INT_ARITH": (2, 1, 3, 1),
        "INT_LOGICAL": (1, 1, 1, 1),
        "SHIFT_LEFT": (3, 3, 5, 3),
        "SHIFT_RIGHT": (3, 3, 3, 3),
        "INT_COMPARE": (2, 1, 3, 1),
        "BYTE_MANIP": (2, 1, 3, 1),
        "INT_MUL": (10, 10, 10, 10),
        "FP_ARITH": (8, 8, 8, 8),
        "FP_DIV": (32, 32, 32, 32),
        "MEM": (1, 1, 3, 1),
    }
    for name, row in paper.items():
        assert series[name] == row, name
