"""Figure 1 study: the three ALU configurations of the paper's intro.

Configuration A (1-cycle ALUs), Configuration B (2-cycle pipelined), and
Configuration C (2-cycle pipelined with intermediate-result forwarding,
i.e. staggered adds as in the Pentium 4).  The paper's framing: all three
give the same bandwidth; A wins on latency-bound code, B loses, and C
recovers the add-to-add edges only.  The RB machine is C generalized to
every RB-capable consumer.
"""

from repro.core.presets import baseline, ideal, rb_full, staggered
from repro.utils.stats import mean
from repro.utils.tables import format_table

WORKLOADS = ["gap", "li", "compress", "go", "crafty", "twolf"]


def test_fig01_alu_configurations(benchmark, runner, save_text):
    machines = {
        "B: Baseline (2-cycle pipelined)": baseline(8),
        "C: Staggered (intermediate fwd)": staggered(8),
        "RB-full (redundant forwarding)": rb_full(8),
        "A: Ideal (1-cycle)": ideal(8),
    }

    def sweep():
        return {
            label: mean(runner.run(config, w).ipc for w in WORKLOADS)
            for label, config in machines.items()
        }

    means = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_text(
        "fig01_configurations",
        format_table(["configuration", "mean IPC"],
                     [[label, ipc] for label, ipc in means.items()],
                     title="Figure 1 study: ALU configurations, 8-wide"),
    )

    b = means["B: Baseline (2-cycle pipelined)"]
    c = means["C: Staggered (intermediate fwd)"]
    a = means["A: Ideal (1-cycle)"]
    # Config C sits between B and A: intermediate forwarding recovers the
    # add-to-add edges but nothing else
    assert b <= c * 1.001
    assert c < a
    # and the paper's machine (RB) generalizes C's forwarding to all
    # RB-capable consumers — on these kernels it must not trail C by much
    # (it can lose slightly where conversion chains dominate)
    assert means["RB-full (redundant forwarding)"] > c * 0.95
