"""Figure 10: IPC of the four 8-wide machines on the SPECint95-like suite.

Paper: RB machines ~9% above Baseline, within ~2% of Ideal.
"""

from repro.harness.experiments import fig_ipc


def test_fig10_ipc_8wide_spec95(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: fig_ipc(8, "spec95", runner), rounds=1, iterations=1
    )
    save_result(result)
    means = result.series["means"]
    base = means["Baseline-8w"]
    limited = means["RB-limited-8w"]
    full = means["RB-full-8w"]
    ideal = means["Ideal-8w"]

    assert base < full <= ideal * 1.001
    assert limited <= full * 1.001
    assert full / base > 1.02
    assert full / ideal > 0.93
    assert limited / full > 0.94
