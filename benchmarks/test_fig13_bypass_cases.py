"""Figure 13: distribution of last-arriving bypass cases (8-wide RB-full).

Paper claims checked: a large fraction of dynamic instructions have at
least one bypassed source; format conversions (RB result consumed by a
TC-only operation) are a small minority of the critical bypasses, because
most last-arriving operands come from loads (TC producers).
"""

from repro.harness.experiments import fig13_bypass_cases
from repro.utils.stats import mean


def test_fig13_bypass_cases(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: fig13_bypass_cases(runner), rounds=1, iterations=1
    )
    save_result(result)
    per_benchmark = result.series

    bypassed = [row["bypassed_fraction"] for row in per_benchmark.values()]
    conversions = [row["RB_TO_TC"] for row in per_benchmark.values()]

    # most instructions receive at least one operand off the bypass network
    assert mean(bypassed) > 0.4
    assert all(0.2 <= fraction <= 1.0 for fraction in bypassed)
    # conversions are a minority of critical bypasses on every benchmark,
    # and a small minority on average (paper: a few percent)
    assert all(fraction < 0.55 for fraction in conversions)
    assert mean(conversions) < 0.30
    # the four cases partition the bypasses
    for name, row in per_benchmark.items():
        total = row["TC_TO_TC"] + row["TC_TO_RB"] + row["RB_TO_RB"] + row["RB_TO_TC"]
        assert abs(total - 1.0) < 1e-6 or total == 0.0, name
